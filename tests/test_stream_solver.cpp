// Stream-engine tests: window cutting (window=1, window>input, drain),
// malformed-record isolation mid-stream, the rolling digest's equality with
// a one-shot batch digest over the concatenated windows, arrival-ordered
// grouping inside the bounded reorder horizon, the memo hit path, and the
// per-SLA-class latency aggregation.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "src/engine/batch_solver.hpp"
#include "src/engine/portfolio.hpp"
#include "src/engine/stream_solver.hpp"
#include "src/jobs/generators.hpp"
#include "src/jobs/io.hpp"

namespace moldable::engine {
namespace {

using jobs::Family;
using jobs::Instance;
using jobs::make_instance;

std::vector<Instance> small_batch(std::size_t count, procs_t m = 64) {
  std::vector<Instance> batch;
  const auto families = jobs::all_families();
  for (std::size_t i = 0; i < count; ++i)
    batch.push_back(make_instance(families[i % families.size()], 16, m, 100 + i));
  return batch;
}

/// Serializes instances into a serve-mode stream (concatenated records).
std::string to_stream(const std::vector<Instance>& instances) {
  std::string text;
  for (const Instance& inst : instances) text += jobs::to_text(inst);
  return text;
}

StreamResult run_stream(const std::string& text, const StreamConfig& config) {
  std::istringstream input(text);
  return StreamSolver().run(input, config);
}

TEST(StreamSolver, WindowBoundaries) {
  const auto batch = small_batch(5);
  const std::string text = to_stream(batch);

  StreamConfig config;
  config.threads = 2;

  config.window = 2;  // 5 instances -> windows of 2, 2, 1
  StreamResult r = run_stream(text, config);
  EXPECT_EQ(r.windows, 3u);
  ASSERT_EQ(r.window_stats.size(), 3u);
  EXPECT_EQ(r.window_stats[0].instances, 2u);
  EXPECT_EQ(r.window_stats[1].instances, 2u);
  EXPECT_EQ(r.window_stats[2].instances, 1u);  // end-of-input drain
  EXPECT_EQ(r.instances, 5u);
  EXPECT_EQ(r.solved, 5u);

  config.window = 1;  // degenerate: one instance per window
  r = run_stream(text, config);
  EXPECT_EQ(r.windows, 5u);
  for (const WindowStats& w : r.window_stats) EXPECT_EQ(w.instances, 1u);

  config.window = 100;  // window larger than the whole input: one shot
  r = run_stream(text, config);
  EXPECT_EQ(r.windows, 1u);
  EXPECT_EQ(r.window_stats[0].instances, 5u);
}

TEST(StreamSolver, EmptyStreamMatchesEmptyBatch) {
  StreamConfig config;
  const StreamResult r = run_stream("", config);
  EXPECT_EQ(r.windows, 0u);
  EXPECT_EQ(r.instances, 0u);
  EXPECT_EQ(r.malformed, 0u);
  EXPECT_EQ(r.rolling_digest, BatchSolver().solve({}, {}).digest());
}

TEST(StreamSolver, RollingDigestEqualsOneShotBatchDigest) {
  // No arrival metadata -> the stable sort preserves stream order, so the
  // concatenated windows are exactly the input batch, and the rolling
  // digest must equal BatchSolver's one-shot digest over it — the window
  // cuts must leave no trace.
  const auto batch = small_batch(11);
  const std::string text = to_stream(batch);

  BatchConfig one_shot;
  one_shot.threads = 3;
  const std::uint64_t expected = BatchSolver().solve(batch, one_shot).digest();

  for (const std::size_t window : {1ul, 3ul, 4ul, 11ul, 64ul}) {
    StreamConfig config;
    config.window = window;
    config.threads = 3;
    const StreamResult r = run_stream(text, config);
    EXPECT_EQ(r.rolling_digest, expected) << "window=" << window;
    EXPECT_EQ(r.solved, batch.size()) << "window=" << window;
  }
}

TEST(StreamSolver, RollingDigestIsThreadCountIndependent) {
  const std::string text = to_stream(small_batch(10));
  StreamConfig serial;
  serial.window = 3;
  serial.threads = 1;
  StreamConfig parallel = serial;
  parallel.threads = 5;
  const StreamResult a = run_stream(text, serial);
  const StreamResult b = run_stream(text, parallel);
  EXPECT_EQ(a.rolling_digest, b.rolling_digest);
  ASSERT_EQ(a.window_stats.size(), b.window_stats.size());
  for (std::size_t w = 0; w < a.window_stats.size(); ++w) {
    EXPECT_EQ(a.window_stats[w].digest, b.window_stats[w].digest) << w;
    EXPECT_EQ(a.window_stats[w].rolling_digest, b.window_stats[w].rolling_digest) << w;
  }
}

TEST(StreamSolver, MalformedRecordIsIsolatedMidStream) {
  const auto good = small_batch(2);
  std::string text = jobs::to_text(good[0]);
  const std::size_t bad_record_line = 1 + std::count(text.begin(), text.end(), '\n');
  text += "moldable-instance v1\nmachines 4\njob bogus 1 2\n";  // malformed body
  text += jobs::to_text(good[1]);

  StreamConfig config;
  config.window = 10;
  const StreamResult r = run_stream(text, config);
  EXPECT_EQ(r.malformed, 1u);
  EXPECT_EQ(r.instances, 2u);
  EXPECT_EQ(r.solved, 2u);
  ASSERT_EQ(r.errors.size(), 1u);
  EXPECT_EQ(r.errors[0].ordinal, 1u);
  EXPECT_EQ(r.errors[0].line, bad_record_line);
  EXPECT_NE(r.errors[0].message.find("unknown job kind"), std::string::npos)
      << r.errors[0].message;

  // The skipped record must leave no trace in the digest: the stream result
  // equals a one-shot batch over just the two good instances.
  EXPECT_EQ(r.rolling_digest, BatchSolver().solve(good, {}).digest());
}

TEST(StreamSolver, StrayTextOutsideRecordsIsReportedNotSilentlySkipped) {
  std::string text = "not a record\n";
  text += to_stream(small_batch(1));
  StreamConfig config;
  const StreamResult r = run_stream(text, config);
  EXPECT_EQ(r.malformed, 1u);
  EXPECT_EQ(r.solved, 1u);
  ASSERT_EQ(r.errors.size(), 1u);
  EXPECT_NE(r.errors[0].message.find("header"), std::string::npos);
}

TEST(StreamSolver, ArrivalOrdersWindowsInsideTheHorizon) {
  // Four instances stamped in reverse arrival order, all inside one reorder
  // horizon (window 2 x max_inflight 2): the stream layer must serve them
  // arrival-sorted, so the rolling digest equals a one-shot batch over the
  // arrival-sorted vector — and differs from stream order.
  auto batch = small_batch(4);
  for (std::size_t i = 0; i < batch.size(); ++i)
    batch[i].set_arrival(static_cast<double>(batch.size() - i));
  const std::string text = to_stream(batch);

  std::vector<Instance> by_arrival(batch.rbegin(), batch.rend());
  const std::uint64_t sorted_digest = BatchSolver().solve(by_arrival, {}).digest();
  const std::uint64_t stream_order_digest = BatchSolver().solve(batch, {}).digest();
  ASSERT_NE(sorted_digest, stream_order_digest);  // distinct instances: orders differ

  StreamConfig config;
  config.window = 2;
  config.max_inflight = 2;
  const StreamResult r = run_stream(text, config);
  EXPECT_EQ(r.rolling_digest, sorted_digest);
}

TEST(StreamSolver, ReorderHorizonIsBounded) {
  // Same reversed arrivals, but a horizon of one single-instance window:
  // nothing can be reordered, so the stream stays in stream order — the
  // arrival sort must not see beyond the buffered horizon.
  auto batch = small_batch(4);
  for (std::size_t i = 0; i < batch.size(); ++i)
    batch[i].set_arrival(static_cast<double>(batch.size() - i));
  StreamConfig config;
  config.window = 1;
  config.max_inflight = 1;
  const StreamResult r = run_stream(to_stream(batch), config);
  EXPECT_EQ(r.rolling_digest, BatchSolver().solve(batch, {}).digest());
}

TEST(StreamSolver, MemoServesDuplicatesWithUnchangedDigest) {
  auto batch = small_batch(3);
  batch.push_back(batch[0]);  // duplicate in a later window
  batch.push_back(batch[1]);
  const std::string text = to_stream(batch);

  StreamConfig config;
  config.window = 3;
  StreamConfig memoized = config;
  memoized.memo = true;

  const StreamResult plain = run_stream(text, config);
  const StreamResult memo = run_stream(text, memoized);
  EXPECT_EQ(plain.memo_hits, 0u);
  EXPECT_EQ(plain.memo_misses, 0u);
  EXPECT_EQ(memo.memo_hits, 2u);  // both duplicates served from the store
  EXPECT_EQ(memo.memo_misses, 3u);
  ASSERT_EQ(memo.window_stats.size(), 2u);
  EXPECT_EQ(memo.window_stats[1].memo_hits, 2u);
  // Memoization must be invisible to every algorithmic output.
  EXPECT_EQ(memo.rolling_digest, plain.rolling_digest);
  EXPECT_EQ(memo.solved, plain.solved);
}

TEST(StreamSolver, MemoDeduplicatesUnnamedRecords) {
  // Unnamed records get distinct auto-names ("stream-<ordinal>"), which
  // must not defeat memoization: the memo key covers content, not the name.
  const std::string record =
      "moldable-instance v1\nmachines 32\njob amdahl 6 0.4\njob powerlaw 4 0.5\n";
  StreamConfig config;
  config.window = 1;
  config.memo = true;
  const StreamResult r = run_stream(record + record + record, config);
  EXPECT_EQ(r.solved, 3u);
  EXPECT_EQ(r.memo_misses, 1u);
  EXPECT_EQ(r.memo_hits, 2u);
}

TEST(StreamSolver, PortfolioModeRollsTheSameDigestAsOneShot) {
  const auto batch = small_batch(8);
  const std::string text = to_stream(batch);

  PortfolioConfig one_shot;
  one_shot.variants = {"mrt", "lt-2approx"};
  const std::uint64_t expected = PortfolioSolver().solve(batch, one_shot).digest();

  StreamConfig config;
  config.window = 3;
  config.variants = {"mrt", "lt-2approx"};
  config.threads = 4;
  const StreamResult r = run_stream(text, config);
  EXPECT_EQ(r.rolling_digest, expected);
  EXPECT_EQ(r.solved, batch.size());

  StreamConfig serial = config;
  serial.threads = 1;
  EXPECT_EQ(run_stream(text, serial).rolling_digest, r.rolling_digest);
}

TEST(StreamSolver, PerClassLatencySplits) {
  auto batch = small_batch(6);
  for (std::size_t i = 0; i < batch.size(); ++i)
    if (i % 2 == 0) batch[i].set_sla_class("interactive");
  // Odd indices stay unlabelled -> "default".
  const std::string text = to_stream(batch);

  StreamConfig config;
  config.window = 4;
  const StreamResult r = run_stream(text, config);
  ASSERT_EQ(r.per_class.size(), 2u);  // sorted: "" (default) before "interactive"
  EXPECT_EQ(r.per_class[0].sla_class, "default");
  EXPECT_EQ(r.per_class[0].count, 3u);
  EXPECT_EQ(r.per_class[0].solved, 3u);
  EXPECT_EQ(r.per_class[1].sla_class, "interactive");
  EXPECT_EQ(r.per_class[1].count, 3u);
  for (const ClassStats& c : r.per_class) {
    EXPECT_LE(c.queue.p50, c.queue.p99);
    EXPECT_LE(c.queue.p99, c.queue.max);
    EXPECT_LE(c.compute.p50, c.compute.p99);
    EXPECT_LE(c.compute.p99, c.compute.max);
    EXPECT_GE(c.compute.p50, 0);
  }
}

TEST(StreamSolver, PerInstanceFailureIsIsolated) {
  // `exact` hard-caps at tiny instances: the oversized middle record fails
  // alone; the stream keeps serving.
  std::vector<Instance> batch;
  batch.push_back(make_instance(Family::kMixed, 4, 8, 21));
  batch.push_back(make_instance(Family::kMixed, 40, 64, 22));  // over the caps
  batch.push_back(make_instance(Family::kMixed, 4, 8, 23));
  StreamConfig config;
  config.window = 2;
  config.algorithm = "exact";
  const StreamResult r = run_stream(to_stream(batch), config);
  EXPECT_EQ(r.solved, 2u);
  EXPECT_EQ(r.failed, 1u);
  EXPECT_EQ(r.rolling_digest, [&] {
    BatchConfig bc;
    bc.algorithm = "exact";
    return BatchSolver().solve(batch, bc).digest();
  }());
}

TEST(StreamSolver, InvalidConfigThrowsBeforeConsumingInput) {
  const std::string text = to_stream(small_batch(2));
  const auto expect_throw_without_reading = [&](const StreamConfig& config) {
    std::istringstream input(text);
    EXPECT_THROW(StreamSolver().run(input, config), std::invalid_argument);
    // The stream was not touched: the next reader still sees every record.
    jobs::InstanceStreamReader reader(input);
    jobs::StreamRecord record;
    std::size_t records = 0;
    while (reader.next(record)) ++records;
    EXPECT_EQ(records, 2u);
  };

  StreamConfig zero_window;
  zero_window.window = 0;
  expect_throw_without_reading(zero_window);

  StreamConfig zero_inflight;
  zero_inflight.max_inflight = 0;
  expect_throw_without_reading(zero_inflight);

  StreamConfig bad_eps;
  bad_eps.eps = 1.5;
  expect_throw_without_reading(bad_eps);

  StreamConfig unknown;
  unknown.algorithm = "no-such-solver";
  expect_throw_without_reading(unknown);

  StreamConfig dup_variants;
  dup_variants.variants = {"mrt", "mrt"};
  expect_throw_without_reading(dup_variants);
}

}  // namespace
}  // namespace moldable::engine
