// Stream-engine tests: window cutting (window=1, window>input, drain),
// malformed-record isolation mid-stream, the rolling digest's equality with
// a one-shot batch digest over the concatenated windows, arrival-ordered
// grouping inside the bounded reorder horizon, the memo hit path (bounded
// and unbounded), capped window-history retention, deadline-class buffer
// jumping with miss counters, and the per-SLA-class latency aggregation.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "src/engine/batch_solver.hpp"
#include "src/engine/portfolio.hpp"
#include "src/engine/stream_solver.hpp"
#include "src/jobs/generators.hpp"
#include "src/jobs/io.hpp"
#include "src/traffic/replay.hpp"
#include "src/traffic/traffic_gen.hpp"

namespace moldable::engine {
namespace {

using jobs::Family;
using jobs::Instance;
using jobs::make_instance;

std::vector<Instance> small_batch(std::size_t count, procs_t m = 64) {
  std::vector<Instance> batch;
  const auto families = jobs::all_families();
  for (std::size_t i = 0; i < count; ++i)
    batch.push_back(make_instance(families[i % families.size()], 16, m, 100 + i));
  return batch;
}

/// Serializes instances into a serve-mode stream (concatenated records).
std::string to_stream(const std::vector<Instance>& instances) {
  std::string text;
  for (const Instance& inst : instances) text += jobs::to_text(inst);
  return text;
}

StreamResult run_stream(const std::string& text, const StreamConfig& config) {
  std::istringstream input(text);
  return StreamSolver().run(input, config);
}

TEST(StreamSolver, WindowBoundaries) {
  const auto batch = small_batch(5);
  const std::string text = to_stream(batch);

  StreamConfig config;
  config.threads = 2;

  config.window = 2;  // 5 instances -> windows of 2, 2, 1
  StreamResult r = run_stream(text, config);
  EXPECT_EQ(r.windows, 3u);
  ASSERT_EQ(r.window_stats.size(), 3u);
  EXPECT_EQ(r.window_stats[0].instances, 2u);
  EXPECT_EQ(r.window_stats[1].instances, 2u);
  EXPECT_EQ(r.window_stats[2].instances, 1u);  // end-of-input drain
  EXPECT_EQ(r.instances, 5u);
  EXPECT_EQ(r.solved, 5u);

  config.window = 1;  // degenerate: one instance per window
  r = run_stream(text, config);
  EXPECT_EQ(r.windows, 5u);
  for (const WindowStats& w : r.window_stats) EXPECT_EQ(w.instances, 1u);

  config.window = 100;  // window larger than the whole input: one shot
  r = run_stream(text, config);
  EXPECT_EQ(r.windows, 1u);
  EXPECT_EQ(r.window_stats[0].instances, 5u);
}

TEST(StreamSolver, EmptyStreamMatchesEmptyBatch) {
  StreamConfig config;
  const StreamResult r = run_stream("", config);
  EXPECT_EQ(r.windows, 0u);
  EXPECT_EQ(r.instances, 0u);
  EXPECT_EQ(r.malformed, 0u);
  EXPECT_EQ(r.rolling_digest, BatchSolver().solve({}, {}).digest());
}

TEST(StreamSolver, RollingDigestEqualsOneShotBatchDigest) {
  // No arrival metadata -> the stable sort preserves stream order, so the
  // concatenated windows are exactly the input batch, and the rolling
  // digest must equal BatchSolver's one-shot digest over it — the window
  // cuts must leave no trace.
  const auto batch = small_batch(11);
  const std::string text = to_stream(batch);

  BatchConfig one_shot;
  one_shot.threads = 3;
  const std::uint64_t expected = BatchSolver().solve(batch, one_shot).digest();

  for (const std::size_t window : {1ul, 3ul, 4ul, 11ul, 64ul}) {
    StreamConfig config;
    config.window = window;
    config.threads = 3;
    const StreamResult r = run_stream(text, config);
    EXPECT_EQ(r.rolling_digest, expected) << "window=" << window;
    EXPECT_EQ(r.solved, batch.size()) << "window=" << window;
  }
}

TEST(StreamSolver, RollingDigestIsThreadCountIndependent) {
  const std::string text = to_stream(small_batch(10));
  StreamConfig serial;
  serial.window = 3;
  serial.threads = 1;
  StreamConfig parallel = serial;
  parallel.threads = 5;
  const StreamResult a = run_stream(text, serial);
  const StreamResult b = run_stream(text, parallel);
  EXPECT_EQ(a.rolling_digest, b.rolling_digest);
  ASSERT_EQ(a.window_stats.size(), b.window_stats.size());
  for (std::size_t w = 0; w < a.window_stats.size(); ++w) {
    EXPECT_EQ(a.window_stats[w].digest, b.window_stats[w].digest) << w;
    EXPECT_EQ(a.window_stats[w].rolling_digest, b.window_stats[w].rolling_digest) << w;
  }
}

TEST(StreamSolver, MalformedRecordIsIsolatedMidStream) {
  const auto good = small_batch(2);
  std::string text = jobs::to_text(good[0]);
  const std::size_t bad_record_line = 1 + std::count(text.begin(), text.end(), '\n');
  text += "moldable-instance v1\nmachines 4\njob bogus 1 2\n";  // malformed body
  text += jobs::to_text(good[1]);

  StreamConfig config;
  config.window = 10;
  const StreamResult r = run_stream(text, config);
  EXPECT_EQ(r.malformed, 1u);
  EXPECT_EQ(r.instances, 2u);
  EXPECT_EQ(r.solved, 2u);
  ASSERT_EQ(r.errors.size(), 1u);
  EXPECT_EQ(r.errors[0].ordinal, 1u);
  EXPECT_EQ(r.errors[0].line, bad_record_line);
  EXPECT_NE(r.errors[0].message.find("unknown job kind"), std::string::npos)
      << r.errors[0].message;

  // The skipped record must leave no trace in the digest: the stream result
  // equals a one-shot batch over just the two good instances.
  EXPECT_EQ(r.rolling_digest, BatchSolver().solve(good, {}).digest());
}

TEST(StreamSolver, StrayTextOutsideRecordsIsReportedNotSilentlySkipped) {
  std::string text = "not a record\n";
  text += to_stream(small_batch(1));
  StreamConfig config;
  const StreamResult r = run_stream(text, config);
  EXPECT_EQ(r.malformed, 1u);
  EXPECT_EQ(r.solved, 1u);
  ASSERT_EQ(r.errors.size(), 1u);
  EXPECT_NE(r.errors[0].message.find("header"), std::string::npos);
}

TEST(StreamSolver, ArrivalOrdersWindowsInsideTheHorizon) {
  // Four instances stamped in reverse arrival order, all inside one reorder
  // horizon (window 2 x max_inflight 2): the stream layer must serve them
  // arrival-sorted, so the rolling digest equals a one-shot batch over the
  // arrival-sorted vector — and differs from stream order.
  auto batch = small_batch(4);
  for (std::size_t i = 0; i < batch.size(); ++i)
    batch[i].set_arrival(static_cast<double>(batch.size() - i));
  const std::string text = to_stream(batch);

  std::vector<Instance> by_arrival(batch.rbegin(), batch.rend());
  const std::uint64_t sorted_digest = BatchSolver().solve(by_arrival, {}).digest();
  const std::uint64_t stream_order_digest = BatchSolver().solve(batch, {}).digest();
  ASSERT_NE(sorted_digest, stream_order_digest);  // distinct instances: orders differ

  StreamConfig config;
  config.window = 2;
  config.max_inflight = 2;
  const StreamResult r = run_stream(text, config);
  EXPECT_EQ(r.rolling_digest, sorted_digest);
}

TEST(StreamSolver, ReorderHorizonIsBounded) {
  // Same reversed arrivals, but a horizon of one single-instance window:
  // nothing can be reordered, so the stream stays in stream order — the
  // arrival sort must not see beyond the buffered horizon.
  auto batch = small_batch(4);
  for (std::size_t i = 0; i < batch.size(); ++i)
    batch[i].set_arrival(static_cast<double>(batch.size() - i));
  StreamConfig config;
  config.window = 1;
  config.max_inflight = 1;
  const StreamResult r = run_stream(to_stream(batch), config);
  EXPECT_EQ(r.rolling_digest, BatchSolver().solve(batch, {}).digest());
}

TEST(StreamSolver, MemoServesDuplicatesWithUnchangedDigest) {
  auto batch = small_batch(3);
  batch.push_back(batch[0]);  // duplicate in a later window
  batch.push_back(batch[1]);
  const std::string text = to_stream(batch);

  StreamConfig config;
  config.window = 3;
  StreamConfig memoized = config;
  memoized.memo = true;

  const StreamResult plain = run_stream(text, config);
  const StreamResult memo = run_stream(text, memoized);
  EXPECT_EQ(plain.memo_hits, 0u);
  EXPECT_EQ(plain.memo_misses, 0u);
  EXPECT_EQ(memo.memo_hits, 2u);  // both duplicates served from the store
  EXPECT_EQ(memo.memo_misses, 3u);
  ASSERT_EQ(memo.window_stats.size(), 2u);
  EXPECT_EQ(memo.window_stats[1].memo_hits, 2u);
  // Memoization must be invisible to every algorithmic output.
  EXPECT_EQ(memo.rolling_digest, plain.rolling_digest);
  EXPECT_EQ(memo.solved, plain.solved);
}

TEST(StreamSolver, MemoDeduplicatesUnnamedRecords) {
  // Unnamed records get distinct auto-names ("stream-<ordinal>"), which
  // must not defeat memoization: the memo key covers content, not the name.
  const std::string record =
      "moldable-instance v1\nmachines 32\njob amdahl 6 0.4\njob powerlaw 4 0.5\n";
  StreamConfig config;
  config.window = 1;
  config.memo = true;
  const StreamResult r = run_stream(record + record + record, config);
  EXPECT_EQ(r.solved, 3u);
  EXPECT_EQ(r.memo_misses, 1u);
  EXPECT_EQ(r.memo_hits, 2u);
}

TEST(StreamSolver, BoundedMemoEvictsDeterministicallyWithUnchangedDigest) {
  // 12 distinct instances, the first four repeated at the end, through a
  // capacity-4 store: evictions must happen, every algorithmic output must
  // be untouched, and the whole memo tally must be thread-count independent.
  auto batch = small_batch(12);
  for (std::size_t i = 0; i < 4; ++i) batch.push_back(batch[i]);
  const std::string text = to_stream(batch);

  StreamConfig plain_config;
  plain_config.window = 4;
  StreamConfig bounded = plain_config;
  bounded.memo = true;
  bounded.memo_capacity = 4;

  const StreamResult plain = run_stream(text, plain_config);
  const StreamResult a = run_stream(text, bounded);
  EXPECT_EQ(a.rolling_digest, plain.rolling_digest);
  EXPECT_EQ(a.solved, plain.solved);
  EXPECT_GT(a.memo_evictions, 0u);  // 12 distinct keys through capacity 4
  EXPECT_EQ(a.memo_hits + a.memo_misses, batch.size());

  StreamConfig parallel = bounded;
  parallel.threads = 6;
  const StreamResult b = run_stream(text, parallel);
  EXPECT_EQ(b.rolling_digest, a.rolling_digest);
  EXPECT_EQ(b.memo_hits, a.memo_hits);
  EXPECT_EQ(b.memo_misses, a.memo_misses);
  EXPECT_EQ(b.memo_evictions, a.memo_evictions);

  // An unbounded run over the same stream hits on every repeat; the bounded
  // store, having evicted them, re-solves — fewer hits, same digest.
  StreamConfig unbounded = bounded;
  unbounded.memo_capacity = 0;
  const StreamResult u = run_stream(text, unbounded);
  EXPECT_EQ(u.rolling_digest, plain.rolling_digest);
  EXPECT_EQ(u.memo_evictions, 0u);
  EXPECT_GE(u.memo_hits, a.memo_hits);
}

TEST(StreamSolver, WindowHistoryCapsRetainedStats) {
  const auto batch = small_batch(10);
  const std::string text = to_stream(batch);

  StreamConfig config;
  config.window = 1;
  config.window_history = 3;
  const StreamResult r = run_stream(text, config);
  EXPECT_EQ(r.windows, 10u);      // totals cover every window...
  EXPECT_EQ(r.instances, 10u);
  ASSERT_EQ(r.window_stats.size(), 3u);  // ...but only the last 3 are kept
  EXPECT_EQ(r.window_stats.front().index, 7u);
  EXPECT_EQ(r.window_stats.back().index, 9u);
  EXPECT_EQ(r.window_stats.back().rolling_digest, r.rolling_digest);

  // The window callback still fires for every window, in order.
  std::vector<std::size_t> seen;
  std::istringstream input(text);
  StreamSolver().run(input, config,
                     [&](const WindowStats& w) { seen.push_back(w.index); });
  EXPECT_EQ(seen.size(), 10u);
}

TEST(StreamSolver, WindowHistoryCapsRetainedErrors) {
  std::string text;
  for (int i = 0; i < 5; ++i) {
    text += "not a record " + std::to_string(i) + "\n";
    text += to_stream(small_batch(1));
  }
  StreamConfig config;
  config.window = 1;
  config.window_history = 2;
  std::size_t reported = 0;
  std::istringstream input(text);
  const StreamResult r =
      StreamSolver().run(input, config, {},
                         [&](const StreamError&) { ++reported; });
  EXPECT_EQ(r.malformed, 5u);
  EXPECT_EQ(reported, 5u);          // the callback saw every one...
  EXPECT_EQ(r.errors.size(), 2u);   // ...the result keeps the most recent 2
}

TEST(StreamSolver, DeadlineClassJumpsTheReorderBuffer) {
  // Four instances, stream order, equal arrivals; the last is labelled
  // interactive. With a deadline on that class its effective deadline is
  // finite while everyone else's is +inf, so it must be served first —
  // the rolling digest equals a one-shot batch over the jumped order.
  auto batch = small_batch(4);
  batch[3].set_sla_class("interactive");
  const std::string text = to_stream(batch);

  std::vector<Instance> jumped = {batch[3], batch[0], batch[1], batch[2]};
  const std::uint64_t jumped_digest = BatchSolver().solve(jumped, {}).digest();
  const std::uint64_t stream_order_digest = BatchSolver().solve(batch, {}).digest();
  ASSERT_NE(jumped_digest, stream_order_digest);

  StreamConfig config;
  config.window = 4;
  config.class_deadlines["interactive"] = 10.0;
  EXPECT_EQ(run_stream(text, config).rolling_digest, jumped_digest);

  // Without the deadline the same stream keeps stream order: the jump is a
  // pure function of the config, not of the class label.
  StreamConfig no_deadline;
  no_deadline.window = 4;
  EXPECT_EQ(run_stream(text, no_deadline).rolling_digest, stream_order_digest);
}

TEST(StreamSolver, EarlierDeadlineWinsWithinADeadlineClass) {
  // Two interactive instances with different arrivals: deadline = arrival +
  // class deadline, so the earlier arrival keeps its head start; the
  // deadline sort must not collapse a class into one undifferentiated bump.
  auto batch = small_batch(3);
  batch[1].set_sla_class("interactive");
  batch[1].set_arrival(5);
  batch[2].set_sla_class("interactive");
  batch[2].set_arrival(1);
  const std::string text = to_stream(batch);

  std::vector<Instance> expected = {batch[2], batch[1], batch[0]};
  StreamConfig config;
  config.window = 3;
  config.class_deadlines["interactive"] = 2.0;
  EXPECT_EQ(run_stream(text, config).rolling_digest,
            BatchSolver().solve(expected, {}).digest());
}

TEST(StreamSolver, DeadlineMissesAreCountedPerClassAndPerWindow) {
  auto batch = small_batch(6);
  for (std::size_t i = 0; i < batch.size(); ++i)
    if (i % 2 == 0) batch[i].set_sla_class("interactive");
  const std::string text = to_stream(batch);

  StreamConfig config;
  config.window = 3;
  // An impossible deadline: every interactive instance misses (queue +
  // compute latency is always positive), and the unlabelled class — no
  // deadline — never counts a miss however long it takes.
  config.class_deadlines["interactive"] = 1e-12;
  const StreamResult r = run_stream(text, config);
  EXPECT_EQ(r.deadline_misses, 3u);
  ASSERT_EQ(r.per_class.size(), 2u);
  EXPECT_EQ(r.per_class[0].sla_class, "default");
  EXPECT_EQ(r.per_class[0].deadline_misses, 0u);
  EXPECT_EQ(r.per_class[0].deadline_seconds, 0);
  EXPECT_EQ(r.per_class[1].sla_class, "interactive");
  EXPECT_EQ(r.per_class[1].deadline_misses, 3u);
  EXPECT_EQ(r.per_class[1].deadline_seconds, 1e-12);
  std::size_t window_total = 0;
  for (const WindowStats& w : r.window_stats) window_total += w.deadline_misses;
  EXPECT_EQ(window_total, 3u);

  // A generous deadline (solving a small instance takes nowhere near an
  // hour) records zero misses.
  StreamConfig generous = config;
  generous.class_deadlines["interactive"] = 3600.0;
  EXPECT_EQ(run_stream(text, generous).deadline_misses, 0u);
}

TEST(StreamSolver, DefaultKeyNamesTheUnlabelledClass) {
  // --deadline default=... must cover unlabelled instances (the io layer
  // canonicalizes an explicit `class default` to unlabelled, and the stats
  // report them under "default").
  const auto batch = small_batch(2);
  StreamConfig config;
  config.window = 2;
  config.class_deadlines["default"] = 1e-12;
  const StreamResult r = run_stream(to_stream(batch), config);
  EXPECT_EQ(r.deadline_misses, 2u);
  ASSERT_EQ(r.per_class.size(), 1u);
  EXPECT_EQ(r.per_class[0].deadline_seconds, 1e-12);
}

TEST(StreamSolver, RawSamplesMatchesSketchOnSmallStreams) {
  // Below the sketch's exact threshold both paths are nearest-rank over the
  // same samples of the same run... which are wall-clock measurements, so
  // compare shapes, not values: both must be monotone and consistent.
  const std::string text = to_stream(small_batch(8));
  StreamConfig config;
  config.window = 4;
  config.raw_samples = true;
  const StreamResult r = run_stream(text, config);
  ASSERT_EQ(r.per_class.size(), 1u);
  EXPECT_LE(r.per_class[0].compute.p50, r.per_class[0].compute.p99);
  EXPECT_LE(r.per_class[0].compute.p99, r.per_class[0].compute.max);
}

TEST(StreamSolver, PortfolioModeRollsTheSameDigestAsOneShot) {
  const auto batch = small_batch(8);
  const std::string text = to_stream(batch);

  PortfolioConfig one_shot;
  one_shot.variants = {"mrt", "lt-2approx"};
  const std::uint64_t expected = PortfolioSolver().solve(batch, one_shot).digest();

  StreamConfig config;
  config.window = 3;
  config.variants = {"mrt", "lt-2approx"};
  config.threads = 4;
  const StreamResult r = run_stream(text, config);
  EXPECT_EQ(r.rolling_digest, expected);
  EXPECT_EQ(r.solved, batch.size());

  StreamConfig serial = config;
  serial.threads = 1;
  EXPECT_EQ(run_stream(text, serial).rolling_digest, r.rolling_digest);
}

TEST(StreamSolver, PerClassLatencySplits) {
  auto batch = small_batch(6);
  for (std::size_t i = 0; i < batch.size(); ++i)
    if (i % 2 == 0) batch[i].set_sla_class("interactive");
  // Odd indices stay unlabelled -> "default".
  const std::string text = to_stream(batch);

  StreamConfig config;
  config.window = 4;
  const StreamResult r = run_stream(text, config);
  ASSERT_EQ(r.per_class.size(), 2u);  // sorted: "" (default) before "interactive"
  EXPECT_EQ(r.per_class[0].sla_class, "default");
  EXPECT_EQ(r.per_class[0].count, 3u);
  EXPECT_EQ(r.per_class[0].solved, 3u);
  EXPECT_EQ(r.per_class[1].sla_class, "interactive");
  EXPECT_EQ(r.per_class[1].count, 3u);
  for (const ClassStats& c : r.per_class) {
    EXPECT_LE(c.queue.p50, c.queue.p99);
    EXPECT_LE(c.queue.p99, c.queue.max);
    EXPECT_LE(c.compute.p50, c.compute.p99);
    EXPECT_LE(c.compute.p99, c.compute.max);
    EXPECT_GE(c.compute.p50, 0);
  }
}

TEST(StreamSolver, PerInstanceFailureIsIsolated) {
  // `exact` hard-caps at tiny instances: the oversized middle record fails
  // alone; the stream keeps serving.
  std::vector<Instance> batch;
  batch.push_back(make_instance(Family::kMixed, 4, 8, 21));
  batch.push_back(make_instance(Family::kMixed, 40, 64, 22));  // over the caps
  batch.push_back(make_instance(Family::kMixed, 4, 8, 23));
  StreamConfig config;
  config.window = 2;
  config.algorithm = "exact";
  const StreamResult r = run_stream(to_stream(batch), config);
  EXPECT_EQ(r.solved, 2u);
  EXPECT_EQ(r.failed, 1u);
  EXPECT_EQ(r.rolling_digest, [&] {
    BatchConfig bc;
    bc.algorithm = "exact";
    return BatchSolver().solve(batch, bc).digest();
  }());
}

TEST(StreamSolver, InvalidConfigThrowsBeforeConsumingInput) {
  const std::string text = to_stream(small_batch(2));
  const auto expect_throw_without_reading = [&](const StreamConfig& config) {
    std::istringstream input(text);
    EXPECT_THROW(StreamSolver().run(input, config), std::invalid_argument);
    // The stream was not touched: the next reader still sees every record.
    jobs::InstanceStreamReader reader(input);
    jobs::StreamRecord record;
    std::size_t records = 0;
    while (reader.next(record)) ++records;
    EXPECT_EQ(records, 2u);
  };

  StreamConfig zero_window;
  zero_window.window = 0;
  expect_throw_without_reading(zero_window);

  StreamConfig zero_inflight;
  zero_inflight.max_inflight = 0;
  expect_throw_without_reading(zero_inflight);

  StreamConfig bad_eps;
  bad_eps.eps = 1.5;
  expect_throw_without_reading(bad_eps);

  StreamConfig unknown;
  unknown.algorithm = "no-such-solver";
  expect_throw_without_reading(unknown);

  StreamConfig dup_variants;
  dup_variants.variants = {"mrt", "mrt"};
  expect_throw_without_reading(dup_variants);

  StreamConfig zero_deadline;
  zero_deadline.class_deadlines["interactive"] = 0;
  expect_throw_without_reading(zero_deadline);

  StreamConfig negative_deadline;
  negative_deadline.class_deadlines["interactive"] = -1;
  expect_throw_without_reading(negative_deadline);

  StreamConfig infinite_deadline;
  infinite_deadline.class_deadlines["interactive"] =
      std::numeric_limits<double>::infinity();
  expect_throw_without_reading(infinite_deadline);
}

// ---------------------------------------------------------- record/replay --
// The bit-exact record/replay contract (traffic/replay.hpp): a session
// recorded while served live at --threads 4 --race must replay on 1 thread
// with an identical rolling digest and identical memo / cancelled /
// deadline-miss counters; a truncated or tampered record file must be
// rejected with a diagnostic naming the defect, and a tampered-but-
// internally-consistent trailer must be caught by the replay comparison.

/// A storm-shaped stream for the round-trip tests: Poisson arrivals, class
/// mix, 1-job deciders (so the racing early-cancel rule fires), duplicates
/// (so the memo hit path runs), enough distinct records to overflow a
/// capacity-16 memo store.
std::string recordable_stream() {
  traffic::TrafficConfig config;
  config.curve = "flash:base=30,peak=300,t0=2,ramp=1,hold=2,decay=2";
  config.seed = 7;
  config.horizon = 8;
  config.jobs_min = 1;
  config.jobs_cap = 6;
  config.machines = 4;
  config.duplicate_every = 9;
  std::ostringstream out;
  traffic::TrafficGenerator(config).write(out);
  return out.str();
}

/// The serve configuration under test: racing portfolio, bounded LRU memo,
/// an interactive deadline.
StreamConfig recordable_config(unsigned threads) {
  StreamConfig config;
  config.window = 8;
  config.max_inflight = 2;
  config.variants = {"exact", "fptas", "mrt"};
  config.race = true;
  config.threads = threads;
  config.memo = true;
  config.memo_capacity = 16;
  config.window_history = 4;
  config.tie_break = TieBreak::kPortfolioOrder;
  config.class_deadlines["interactive"] = 0.5;
  return config;
}

/// Serves `text` under `config` while recording, and returns the record
/// file text alongside the live result.
std::pair<std::string, StreamResult> record_session(const std::string& text,
                                                    const StreamConfig& config) {
  std::ostringstream file;
  traffic::StreamRecorder recorder(file, config);
  std::istringstream input(text);
  const StreamResult live = StreamSolver().run(input, recorder.instrument(config));
  recorder.finalize(live);
  return {file.str(), live};
}

TEST(StreamRecordReplay, FourThreadRaceSessionReplaysBitExactOnOneThread) {
  const std::string text = recordable_stream();
  const auto [record_text, live] = record_session(text, recordable_config(4));
  ASSERT_GT(live.instances, 100u);
  ASSERT_GT(live.cancelled_attempts, 0u) << "the deciders must trigger early-cancel";
  ASSERT_GT(live.memo_hits, 0u);
  ASSERT_GT(live.memo_evictions, 0u);

  std::istringstream file(record_text);
  const traffic::ReplayFile loaded = traffic::load_record(file);
  // The config frame round-trips every deterministic knob.
  EXPECT_EQ(loaded.config.window, 8u);
  EXPECT_EQ(loaded.config.max_inflight, 2u);
  EXPECT_EQ(loaded.config.variants, (std::vector<std::string>{"exact", "fptas", "mrt"}));
  EXPECT_TRUE(loaded.config.race);
  EXPECT_TRUE(loaded.config.memo);
  EXPECT_EQ(loaded.config.memo_capacity, 16u);
  EXPECT_EQ(loaded.config.tie_break, TieBreak::kPortfolioOrder);
  ASSERT_EQ(loaded.config.class_deadlines.count("interactive"), 1u);
  EXPECT_DOUBLE_EQ(loaded.config.class_deadlines.at("interactive"), 0.5);
  // The trailer carries the live session's evidence.
  EXPECT_EQ(loaded.rolling_digest, live.rolling_digest);
  EXPECT_EQ(loaded.counters.instances, live.instances);
  EXPECT_EQ(loaded.counters.cancelled_attempts, live.cancelled_attempts);
  EXPECT_EQ(loaded.counters.deadline_misses, live.deadline_misses);
  EXPECT_EQ(loaded.latencies.size(), live.instances);
  // The source manifest (the traffic_gen preamble) is passed through.
  ASSERT_FALSE(loaded.source_preamble.empty());
  EXPECT_EQ(loaded.source_preamble.front(), "# traffic-manifest v1");

  // The acceptance gate: replay on ONE thread, compare against the
  // four-thread racing session.
  const traffic::ReplayReport report = traffic::replay(loaded, 1);
  EXPECT_TRUE(report.ok) << (report.mismatches.empty() ? "?" : report.mismatches[0]);
  EXPECT_TRUE(report.mismatches.empty());
  EXPECT_EQ(report.result.rolling_digest, live.rolling_digest);
  EXPECT_EQ(report.result.memo_hits, live.memo_hits);
  EXPECT_EQ(report.result.memo_misses, live.memo_misses);
  EXPECT_EQ(report.result.memo_evictions, live.memo_evictions);
  EXPECT_EQ(report.result.cancelled_attempts, live.cancelled_attempts);
  EXPECT_EQ(report.result.deadline_misses, live.deadline_misses);
}

TEST(StreamRecordReplay, RecordBodyIsTheCanonicalReadOrderStream) {
  // The body must be the canonical serialization of the records in READ
  // order — the windowing is a pure function of (stream, config), so the
  // pre-reorder stream is exactly what reproduces the session.
  const std::string text = recordable_stream();
  const auto [record_text, live] = record_session(text, recordable_config(2));

  std::istringstream file(record_text);
  const traffic::ReplayFile loaded = traffic::load_record(file);
  std::istringstream original(text);
  jobs::InstanceStreamReader reader(original);
  jobs::StreamRecord record;
  std::string canonical;
  while (reader.next(record)) {
    ASSERT_TRUE(record.ok);
    canonical += jobs::to_text(record.instance);
  }
  EXPECT_EQ(loaded.body, canonical);
  EXPECT_EQ(loaded.counters.instances, live.instances);
}

TEST(StreamRecordReplay, TruncatedFilesAreRejectedWithADiagnostic) {
  const std::string record_text =
      record_session(recordable_stream(), recordable_config(1)).first;
  const auto expect_truncated = [](const std::string& text) {
    std::istringstream file(text);
    try {
      traffic::load_record(file);
      FAIL() << "a truncated record file must not load";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
          << e.what();
    }
  };
  // Cut mid-body (before the end sentinel)...
  expect_truncated(record_text.substr(0, record_text.size() / 2));
  // ...and mid-trailer (after the end sentinel but before the close).
  const std::size_t end = record_text.find("# moldable-record-end v1");
  ASSERT_NE(end, std::string::npos);
  expect_truncated(record_text.substr(0, end + 25));
  const std::size_t counters = record_text.find("# served ");
  ASSERT_NE(counters, std::string::npos);
  expect_truncated(record_text.substr(0, counters));

  // Not a record file at all: a plain serve stream.
  std::istringstream not_a_record(recordable_stream());
  EXPECT_THROW(traffic::load_record(not_a_record), std::runtime_error);
  std::istringstream empty("");
  EXPECT_THROW(traffic::load_record(empty), std::runtime_error);
}

TEST(StreamRecordReplay, CorruptedBodyIsRejectedWithADiagnostic) {
  std::string record_text =
      record_session(recordable_stream(), recordable_config(1)).first;
  // Flip one digit inside a record body line: the trailer digest no longer
  // matches the bytes, which is exactly what "corrupted" means here.
  const std::size_t job = record_text.find("job ");
  ASSERT_NE(job, std::string::npos);
  const std::size_t digit = record_text.find_first_of("0123456789", job);
  ASSERT_NE(digit, std::string::npos);
  record_text[digit] = record_text[digit] == '9' ? '8' : '9';
  std::istringstream file(record_text);
  try {
    traffic::load_record(file);
    FAIL() << "a corrupted record file must not load";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("corrupted"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("digest"), std::string::npos) << e.what();
  }
}

TEST(StreamRecordReplay, ReplayCatchesATamperedCounter) {
  // A record whose body is intact but whose trailer lies (memo-hits off by
  // one) parses fine — the divergence must surface in the replay report,
  // with the honest counters alongside.
  std::string record_text =
      record_session(recordable_stream(), recordable_config(1)).first;
  const std::size_t hits = record_text.find("memo-hits=");
  ASSERT_NE(hits, std::string::npos);
  const std::size_t digit = hits + 10;
  record_text[digit] = record_text[digit] == '9' ? '8' : '9';

  std::istringstream file(record_text);
  const traffic::ReplayFile loaded = traffic::load_record(file);
  const traffic::ReplayReport report = traffic::replay(loaded, 1);
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.mismatches.size(), 1u);
  EXPECT_NE(report.mismatches[0].find("memo hits"), std::string::npos)
      << report.mismatches[0];
}

TEST(StreamRecordReplay, ReplayLatencyOverrideReproducesDeadlineMisses) {
  // Deadline misses are wall-clock MEASUREMENTS — the one non-deterministic
  // counter. The recorded latency table must reproduce them exactly even
  // when they could never occur live (sub-millisecond instances against a
  // 100-second threshold), proving replay scores the recorded values and
  // not a fresh measurement.
  const auto batch = small_batch(6);
  std::vector<Instance> labelled;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Instance inst = batch[i];
    inst.set_sla_class("interactive");
    labelled.push_back(std::move(inst));
  }
  const std::string text = to_stream(labelled);

  StreamConfig config;
  config.window = 3;
  config.threads = 1;
  config.class_deadlines["interactive"] = 100.0;  // unmissable live

  std::ostringstream file;
  traffic::StreamRecorder recorder(file, config);
  std::istringstream input(text);
  StreamResult live = StreamSolver().run(input, recorder.instrument(config));
  ASSERT_EQ(live.deadline_misses, 0u);

  // Forge the session the recorder saw: pretend instances 1 and 4 took 200
  // seconds. finalize() writes the forged latencies and honest counters
  // must come from the result we claim — so patch both, as a recorder whose
  // live run really measured those latencies would have.
  std::ostringstream forged_file;
  traffic::StreamRecorder forged(forged_file, config);
  StreamConfig instrumented = forged.instrument(config);
  std::vector<std::pair<double, double>> slow(labelled.size(), {0.001, 0.001});
  slow[1] = {150.0, 50.0};
  slow[4] = {10.0, 190.0};
  instrumented.replay_latencies = &slow;  // the "measurement" of this session
  std::istringstream again(text);
  StreamResult slow_live = StreamSolver().run(again, instrumented);
  EXPECT_EQ(slow_live.deadline_misses, 2u);  // the override fed the scoring
  forged.finalize(slow_live);

  std::istringstream record(forged_file.str());
  const traffic::ReplayFile loaded = traffic::load_record(record);
  EXPECT_EQ(loaded.counters.deadline_misses, 2u);
  const traffic::ReplayReport report = traffic::replay(loaded, 2);
  EXPECT_TRUE(report.ok) << (report.mismatches.empty() ? "?" : report.mismatches[0]);
  EXPECT_EQ(report.result.deadline_misses, 2u);
}

// ------------------------------------------------------- InstanceSource --
// Regression tests for the multi-source refactor: the serve loop must be a
// pure function of the record sequence an InstanceSource yields, whatever
// produced it, and the bookkeeping the socket layer depends on — gap-free
// stream-global indices, tags riding the reorder buffer — must hold even
// for sources that end mid-record.

/// The minimal InstanceSource: a canned record vector. What a socket
/// session or watch-dir scan boils down to once the I/O is stripped away.
class VectorSource : public InstanceSource {
 public:
  explicit VectorSource(std::vector<jobs::StreamRecord> records)
      : records_(std::move(records)) {}
  bool next(jobs::StreamRecord& record) override {
    if (pos_ >= records_.size()) return false;
    record = records_[pos_++];
    return true;
  }

 private:
  std::vector<jobs::StreamRecord> records_;
  std::size_t pos_ = 0;
};

jobs::StreamRecord ok_record(Instance instance, std::uint64_t tag,
                             std::size_t ordinal) {
  jobs::StreamRecord record;
  record.ok = true;
  record.instance = std::move(instance);
  record.tag = tag;
  record.ordinal = ordinal;
  return record;
}

jobs::StreamRecord bad_record(std::uint64_t tag, std::size_t ordinal) {
  jobs::StreamRecord record;
  record.ok = false;
  record.error = "torn record (session died mid-write)";
  record.tag = tag;
  record.ordinal = ordinal;
  return record;
}

TEST(StreamSolver, VectorSourceMatchesIstreamSource) {
  // Same records, two transports: the canned source and the istream wrapper
  // must produce identical serves — digest, windows, counters. The engine
  // must not care where records come from.
  const auto batch = small_batch(7);
  StreamConfig config;
  config.window = 3;
  config.threads = 2;

  std::vector<jobs::StreamRecord> records;
  for (std::size_t i = 0; i < batch.size(); ++i)
    records.push_back(ok_record(batch[i], 0, i));
  VectorSource source(std::move(records));
  const StreamResult from_vector = StreamSolver().run(source, config);
  const StreamResult from_stream = run_stream(to_stream(batch), config);

  EXPECT_EQ(from_vector.rolling_digest, from_stream.rolling_digest);
  EXPECT_EQ(from_vector.windows, from_stream.windows);
  EXPECT_EQ(from_vector.instances, from_stream.instances);
  EXPECT_EQ(from_vector.solved, from_stream.solved);
}

TEST(StreamSolver, ServedIndicesStayGapFreeAcrossMalformedRecords) {
  // A malformed record — including a socket session dying mid-record, which
  // parses as a torn tail — must never consume a stream-global outcome
  // index: downstream consumers (the recorder's latency table, the socket
  // RESULT frames) key on a dense 0..N-1 index space.
  const auto batch = small_batch(3);
  std::vector<jobs::StreamRecord> records;
  records.push_back(ok_record(batch[0], 7, 0));
  records.push_back(bad_record(9, 1));  // session 9 disconnected mid-record
  records.push_back(ok_record(batch[1], 7, 2));
  records.push_back(bad_record(7, 3));
  records.push_back(ok_record(batch[2], 8, 4));
  VectorSource source(std::move(records));

  StreamConfig config;
  config.window = 2;
  std::vector<std::size_t> served_indices;
  config.on_served = [&](std::size_t index, std::uint64_t, bool ok, double, double) {
    EXPECT_TRUE(ok);
    served_indices.push_back(index);
  };
  std::vector<StreamError> errors;
  const StreamResult r = StreamSolver().run(
      source, config, {}, [&](const StreamError& e) { errors.push_back(e); });

  EXPECT_EQ(r.instances, 3u);
  EXPECT_EQ(r.malformed, 2u);
  std::sort(served_indices.begin(), served_indices.end());
  EXPECT_EQ(served_indices, (std::vector<std::size_t>{0, 1, 2}));  // no gaps
  // The error callback still knows which session each torn record came from.
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_EQ(errors[0].tag, 9u);
  EXPECT_EQ(errors[1].tag, 7u);
}

TEST(StreamSolver, TagsFollowInstancesThroughReordering) {
  // The reorder buffer sorts by (deadline, arrival) — tags must travel WITH
  // their instances, not with buffer positions, or the socket server would
  // route results to the wrong sessions exactly when reordering kicks in.
  auto batch = small_batch(4);
  const std::uint64_t tags[] = {11, 22, 33, 44};
  std::vector<jobs::StreamRecord> records;
  for (std::size_t i = 0; i < 4; ++i) {
    batch[i].set_arrival(static_cast<double>(3 - i));  // arrivals 3,2,1,0
    records.push_back(ok_record(batch[i], tags[i], i));
  }
  VectorSource source(std::move(records));

  StreamConfig config;
  config.window = 4;  // one window buffers all four -> full arrival re-sort
  std::vector<std::uint64_t> served_tags;
  config.on_served = [&](std::size_t index, std::uint64_t tag, bool, double, double) {
    ASSERT_EQ(index, served_tags.size());  // outcome indices in served order
    served_tags.push_back(tag);
  };
  const StreamResult r = StreamSolver().run(source, config);
  EXPECT_EQ(r.instances, 4u);
  // Served in arrival order (0,1,2,3) = the reverse of record order.
  EXPECT_EQ(served_tags, (std::vector<std::uint64_t>{44, 33, 22, 11}));
}

TEST(StreamSolver, SourceEndingMidWindowDrainsClean) {
  // A source that dries up partway through a window (the last socket client
  // disconnecting) must drain the partial window, not stall or drop it.
  const auto batch = small_batch(5);
  std::vector<jobs::StreamRecord> records;
  for (std::size_t i = 0; i < batch.size(); ++i)
    records.push_back(ok_record(batch[i], 1, i));
  VectorSource source(std::move(records));

  StreamConfig config;
  config.window = 3;
  const StreamResult r = StreamSolver().run(source, config);
  EXPECT_EQ(r.windows, 2u);  // 3 + 2 (end-of-source drain)
  EXPECT_EQ(r.instances, 5u);
  EXPECT_EQ(r.solved, 5u);
}

TEST(StreamSolver, FlushMarkerCutsTheReorderBufferEarly) {
  // A flush marker (a multiplexing source's "every session has drained"
  // signal) must cut the buffered backlog into windows NOW — otherwise a
  // lone client's tail records would wait on future traffic that may never
  // come. The cut changes window shapes but never the outcome digest.
  const auto batch = small_batch(6);
  std::string text;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (i == 2) text += "moldable-flush v1\n";
    text += jobs::to_text(batch[i]);
  }

  StreamConfig config;
  config.window = 4;
  std::size_t flushes = 0;
  config.on_flush = [&] { ++flushes; };
  const StreamResult with_marker = run_stream(text, config);
  EXPECT_EQ(flushes, 1u);
  EXPECT_EQ(with_marker.instances, 6u);
  ASSERT_EQ(with_marker.window_stats.size(), 2u);
  EXPECT_EQ(with_marker.window_stats[0].instances, 2u);  // cut at the marker
  EXPECT_EQ(with_marker.window_stats[1].instances, 4u);

  StreamConfig plain;
  plain.window = 4;
  const StreamResult without = run_stream(to_stream(batch), plain);
  ASSERT_EQ(without.window_stats.size(), 2u);
  EXPECT_EQ(without.window_stats[0].instances, 4u);  // capacity-driven cut
  // Different cuts, same outcomes: the digest must not see the marker.
  EXPECT_EQ(with_marker.rolling_digest, without.rolling_digest);
}

TEST(StreamSolver, EmptyBufferFlushMarkerIsANoOp) {
  // An idle-period marker with nothing buffered must not produce an empty
  // window (or worse, stall) — it is observable only through on_flush.
  const auto batch = small_batch(2);
  const std::string text = "moldable-flush v1\n" + to_stream(batch);
  StreamConfig config;
  config.window = 4;
  std::size_t flushes = 0;
  config.on_flush = [&] { ++flushes; };
  const StreamResult r = run_stream(text, config);
  EXPECT_EQ(flushes, 1u);
  EXPECT_EQ(r.windows, 1u);
  EXPECT_EQ(r.instances, 2u);
  EXPECT_EQ(r.solved, 2u);
}

TEST(StreamRecordReplay, FlushDrivenWindowCutsSurviveReplay) {
  // Window cuts must stay a pure function of (recorded stream, config): the
  // recorder persists flush markers into the body, so a replay re-derives
  // the same flush-driven cuts — and with them the same per-window memo
  // tallies, which are cut-sensitive.
  const auto batch = small_batch(4);
  std::string text = jobs::to_text(batch[0]) + jobs::to_text(batch[1]);
  text += "moldable-flush v1\n";
  text += jobs::to_text(batch[2]) + jobs::to_text(batch[3]);
  text += jobs::to_text(batch[0]);  // cross-window duplicate: memo traffic

  StreamConfig config;
  config.window = 4;
  config.memo = true;
  config.memo_capacity = 8;
  const auto [record_text, live] = record_session(text, config);
  ASSERT_EQ(live.windows, 2u);  // 2 (flush cut) + 3 (end-of-input drain)
  EXPECT_NE(record_text.find("moldable-flush v1"), std::string::npos)
      << "the marker must be persisted in the record body";
  EXPECT_GT(live.memo_hits, 0u);

  std::istringstream file(record_text);
  const traffic::ReplayFile loaded = traffic::load_record(file);
  const traffic::ReplayReport report = traffic::replay(loaded, 1);
  EXPECT_TRUE(report.ok) << (report.mismatches.empty() ? "?" : report.mismatches[0]);
  EXPECT_EQ(report.result.windows, live.windows);
  ASSERT_EQ(report.result.window_stats.size(), 2u);
  EXPECT_EQ(report.result.window_stats[0].instances, 2u);  // same cut on replay
  EXPECT_EQ(report.result.memo_hits, live.memo_hits);
  EXPECT_EQ(report.result.memo_misses, live.memo_misses);
}

}  // namespace
}  // namespace moldable::engine
