// Tests for the baseline schedulers.
#include <gtest/gtest.h>

#include "src/core/baselines.hpp"
#include "src/jobs/generators.hpp"
#include "src/sched/validator.hpp"

namespace moldable::core {
namespace {

using jobs::Family;
using jobs::Instance;
using jobs::make_instance;

TEST(LudwigTiwari, TwoApproxAcrossFamilies) {
  for (Family fam : jobs::all_families()) {
    const procs_t m = fam == Family::kTable ? 64 : 512;
    const Instance inst = make_instance(fam, 40, m, 3);
    const BaselineResult r = ludwig_tiwari_schedule(inst);
    ASSERT_TRUE(sched::validate(r.schedule, inst).ok) << jobs::family_name(fam);
    EXPECT_LE(r.schedule.makespan(), 2 * r.lower_bound * (1 + 1e-9))
        << jobs::family_name(fam);
    EXPECT_GE(r.schedule.makespan(), r.lower_bound * (1 - 1e-9));
  }
}

TEST(Sequential, ValidButPossiblyPoor) {
  const Instance inst = make_instance(Family::kPowerLaw, 20, 64, 5);
  const BaselineResult r = sequential_schedule(inst);
  ASSERT_TRUE(sched::validate(r.schedule, inst).ok);
  for (const auto& a : r.schedule.assignments()) EXPECT_EQ(a.procs, 1);
}

TEST(EqualShare, SplitsMachinesEvenly) {
  const Instance inst = make_instance(Family::kAmdahl, 8, 64, 7);
  const BaselineResult r = equal_share_schedule(inst);
  ASSERT_TRUE(sched::validate(r.schedule, inst).ok);
  for (const auto& a : r.schedule.assignments()) EXPECT_EQ(a.procs, 8);
}

TEST(EqualShare, MoreJobsThanMachines) {
  const Instance inst = make_instance(Family::kAmdahl, 50, 16, 9);
  const BaselineResult r = equal_share_schedule(inst);
  ASSERT_TRUE(sched::validate(r.schedule, inst).ok);
  for (const auto& a : r.schedule.assignments()) EXPECT_EQ(a.procs, 1);
}

TEST(Baselines, EmptyInstances) {
  const Instance inst({}, 4);
  EXPECT_TRUE(ludwig_tiwari_schedule(inst).schedule.empty());
  EXPECT_TRUE(sequential_schedule(inst).schedule.empty());
  EXPECT_TRUE(equal_share_schedule(inst).schedule.empty());
}

TEST(Baselines, LtBeatsNaiveOnParallelWork) {
  // Highly parallel jobs on many machines: LT exploits moldability, the
  // sequential baseline cannot.
  const Instance inst = make_instance(Family::kPowerLaw, 4, 1024, 11);
  const double lt = ludwig_tiwari_schedule(inst).schedule.makespan();
  const double seq = sequential_schedule(inst).schedule.makespan();
  EXPECT_LT(lt, seq);
}

}  // namespace
}  // namespace moldable::core
