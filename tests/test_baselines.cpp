// Tests for the baseline schedulers.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "src/core/baselines.hpp"
#include "src/jobs/generators.hpp"
#include "src/sched/validator.hpp"

namespace moldable::core {
namespace {

using jobs::Family;
using jobs::Instance;
using jobs::make_instance;

TEST(LudwigTiwari, TwoApproxAcrossFamilies) {
  for (Family fam : jobs::all_families()) {
    const procs_t m = fam == Family::kTable ? 64 : 512;
    const Instance inst = make_instance(fam, 40, m, 3);
    const BaselineResult r = ludwig_tiwari_schedule(inst);
    ASSERT_TRUE(sched::validate(r.schedule, inst).ok) << jobs::family_name(fam);
    EXPECT_LE(r.schedule.makespan(), 2 * r.lower_bound * (1 + 1e-9))
        << jobs::family_name(fam);
    EXPECT_GE(r.schedule.makespan(), r.lower_bound * (1 - 1e-9));
  }
}

TEST(Sequential, ValidButPossiblyPoor) {
  const Instance inst = make_instance(Family::kPowerLaw, 20, 64, 5);
  const BaselineResult r = sequential_schedule(inst);
  ASSERT_TRUE(sched::validate(r.schedule, inst).ok);
  for (const auto& a : r.schedule.assignments()) EXPECT_EQ(a.procs, 1);
}

TEST(EqualShare, SplitsMachinesEvenly) {
  const Instance inst = make_instance(Family::kAmdahl, 8, 64, 7);
  const BaselineResult r = equal_share_schedule(inst);
  ASSERT_TRUE(sched::validate(r.schedule, inst).ok);
  for (const auto& a : r.schedule.assignments()) EXPECT_EQ(a.procs, 8);
}

TEST(EqualShare, MoreJobsThanMachines) {
  const Instance inst = make_instance(Family::kAmdahl, 50, 16, 9);
  const BaselineResult r = equal_share_schedule(inst);
  ASSERT_TRUE(sched::validate(r.schedule, inst).ok);
  for (const auto& a : r.schedule.assignments()) EXPECT_EQ(a.procs, 1);
}

TEST(Baselines, EmptyInstances) {
  const Instance inst({}, 4);
  EXPECT_TRUE(ludwig_tiwari_schedule(inst).schedule.empty());
  EXPECT_TRUE(sequential_schedule(inst).schedule.empty());
  EXPECT_TRUE(equal_share_schedule(inst).schedule.empty());
}

TEST(MemoryGreedy, MatchesLtOnMemoryFreeInstances) {
  for (Family fam : {Family::kAmdahl, Family::kPowerLaw, Family::kMixed}) {
    const Instance inst = make_instance(fam, 24, 128, 13);
    const BaselineResult lt = ludwig_tiwari_schedule(inst);
    const BaselineResult mg = memory_greedy_schedule(inst);
    EXPECT_DOUBLE_EQ(mg.schedule.makespan(), lt.schedule.makespan())
        << jobs::family_name(fam);
    EXPECT_DOUBLE_EQ(mg.lower_bound, lt.lower_bound) << jobs::family_name(fam);
  }
}

TEST(MemoryGreedy, RespectsTheMemoryConstraint) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Instance inst = make_instance(Family::kMixed, 12, 32, seed);
    inst.set_memory_capacity(2.0);
    std::vector<double> mem(inst.size());
    for (std::size_t j = 0; j < mem.size(); ++j)
      mem[j] = 0.5 + static_cast<double>((j * 7 + seed) % 12);  // kmin up to 7
    inst.set_job_memory(std::move(mem));

    const BaselineResult r = memory_greedy_schedule(inst);
    const sched::ValidationResult v = sched::validate(r.schedule, inst);
    ASSERT_TRUE(v.ok) << "seed=" << seed
                      << (v.errors.empty() ? "" : ": " + v.errors.front());
    // Every allotment is at or above the job's minimum feasible width.
    for (const auto& a : r.schedule.assignments())
      EXPECT_GE(a.procs, inst.min_feasible_allotment(a.job)) << seed;
    // The reported bound folds the memory-aware area bound in.
    EXPECT_GE(r.lower_bound, inst.memory_lower_bound() * (1 - 1e-9)) << seed;
    EXPECT_GE(r.schedule.makespan(), r.lower_bound * (1 - 1e-9)) << seed;
  }
}

TEST(MemoryGreedy, ThrowsOnProvablyInfeasibleFootprints) {
  Instance inst = make_instance(Family::kAmdahl, 2, 4, 1);
  inst.set_memory_capacity(1.0);
  inst.set_job_memory({5.0, 0.5});  // job 0 needs 5 machines, only 4 exist
  EXPECT_THROW(memory_greedy_schedule(inst), std::invalid_argument);
}

TEST(Baselines, LtBeatsNaiveOnParallelWork) {
  // Highly parallel jobs on many machines: LT exploits moldability, the
  // sequential baseline cannot.
  const Instance inst = make_instance(Family::kPowerLaw, 4, 1024, 11);
  const double lt = ludwig_tiwari_schedule(inst).schedule.makespan();
  const double seq = sequential_schedule(inst).schedule.makespan();
  EXPECT_LT(lt, seq);
}

}  // namespace
}  // namespace moldable::core
