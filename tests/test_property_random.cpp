// Randomized property suite: the library's end-to-end invariants under a
// wide sweep of random monotone instances (table oracles, so every value is
// an arbitrary monotone function, not a smooth closed form).
//
// Properties, for every algorithm A and instance I:
//   (Q1) A(I) is a valid schedule (validator);
//   (Q2) omega <= makespan(A(I)) and makespan <= guarantee * 2 * omega;
//   (Q3) dual monotonicity: if the dual accepts d, it accepts d' >= d
//        (sampled), and the accepted makespan scales with c * d;
//   (Q4) determinism: two runs agree bit-for-bit on the makespan;
//   (Q5) cross-algorithm sanity: no algorithm undercuts the certified
//        lower bound of any other.
#include <gtest/gtest.h>

#include "src/core/bounded_sched.hpp"
#include "src/core/compressible_sched.hpp"
#include "src/core/estimator.hpp"
#include "src/core/mrt.hpp"
#include "src/core/scheduler.hpp"
#include "src/jobs/generators.hpp"
#include "src/sched/validator.hpp"
#include "src/util/prng.hpp"

namespace moldable::core {
namespace {

using jobs::Family;
using jobs::Instance;
using jobs::make_instance;

class RandomInstanceSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomInstanceSweep, AllInvariantsHold) {
  const std::uint64_t seed = GetParam();
  util::Prng rng(seed * 1337 + 17);
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 60));
  const procs_t m = rng.uniform_int(1, 96);
  const Instance inst = make_instance(Family::kTable, n, m, seed);
  const double eps = rng.uniform_real(0.05, 1.0);

  const EstimatorResult est = estimate_makespan(inst);
  double best_lb = est.omega;

  for (Algorithm a : {Algorithm::kMrt, Algorithm::kCompressible, Algorithm::kBounded,
                      Algorithm::kBoundedLinear, Algorithm::kLudwigTiwari}) {
    const ScheduleResult r = schedule_moldable(inst, eps, a);
    // (Q1)
    const auto v = sched::validate(r.schedule, inst);
    ASSERT_TRUE(v.ok) << algorithm_name(a) << " seed=" << seed << ": "
                      << (v.errors.empty() ? "" : v.errors.front());
    // (Q2)
    EXPECT_GE(r.makespan, est.omega * (1 - 1e-9)) << algorithm_name(a);
    EXPECT_LE(r.makespan, r.guarantee * 2 * est.omega * (1 + 1e-9))
        << algorithm_name(a) << " seed=" << seed << " eps=" << eps;
    best_lb = std::max(best_lb, r.lower_bound);
    // (Q4)
    const ScheduleResult r2 = schedule_moldable(inst, eps, a);
    EXPECT_DOUBLE_EQ(r.makespan, r2.makespan) << algorithm_name(a);
  }

  // (Q5): the sharpest certified lower bound binds every algorithm.
  for (Algorithm a : {Algorithm::kMrt, Algorithm::kBoundedLinear}) {
    const ScheduleResult r = schedule_moldable(inst, eps, a);
    EXPECT_GE(r.makespan, best_lb * (1 - 1e-9)) << algorithm_name(a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInstanceSweep, ::testing::Range<std::uint64_t>(0, 48));

class DualMonotonicity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DualMonotonicity, AcceptanceIsUpwardClosed) {
  const std::uint64_t seed = GetParam();
  const Instance inst = make_instance(Family::kTable, 20, 48, seed + 1000);
  const EstimatorResult est = estimate_makespan(inst);
  const double eps = 0.25;

  auto duals = {std::function<DualOutcome(double)>(
                    [&](double d) { return mrt_dual(inst, d); }),
                std::function<DualOutcome(double)>(
                    [&](double d) { return compressible_dual(inst, d, eps); }),
                std::function<DualOutcome(double)>(
                    [&](double d) { return bounded_dual(inst, d, eps, {true}); })};
  for (const auto& dual : duals) {
    // Find the acceptance frontier by scanning downward from 2*omega.
    double smallest_accept = 2 * est.omega;
    bool seen_reject_above_accept = false;
    for (double f = 2.0; f >= 0.5; f -= 0.1) {
      const double d = f * est.omega;
      const DualOutcome out = dual(d);
      if (out.accepted) {
        smallest_accept = d;
      } else if (d > smallest_accept * (1 + 1e-12)) {
        seen_reject_above_accept = true;  // would contradict soundness...
      }
      if (out.accepted) {
        // c-dual contract: accepted schedules respect c*d.
        EXPECT_LE(out.schedule.makespan(), (1.5 + eps) * d * (1 + 1e-9)) << "d=" << d;
      }
    }
    // Note: dual algorithms are not *required* to be upward-closed (only
    // sound), but these implementations are on accepting instances: a
    // violation indicates numerical trouble worth investigating.
    EXPECT_FALSE(seen_reject_above_accept) << "seed=" << seed;
    // Rejection below OPT is mandatory: d far below omega must reject.
    EXPECT_FALSE(dual(0.4 * est.omega).accepted) << "seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualMonotonicity, ::testing::Range<std::uint64_t>(0, 8));

TEST(PropertyEdgeCases, SingleMachineInstances) {
  // m = 1: every job is sequential; all algorithms must produce the exact
  // optimum sum of t1 (any order, no idle).
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Instance inst = make_instance(Family::kTable, 7, 1, seed);
    double opt = 0;
    for (const jobs::Job& j : inst.jobs()) opt += j.t1();
    for (Algorithm a : {Algorithm::kMrt, Algorithm::kBoundedLinear,
                        Algorithm::kLudwigTiwari}) {
      const ScheduleResult r = schedule_moldable(inst, 0.25, a);
      ASSERT_TRUE(sched::validate(r.schedule, inst).ok);
      EXPECT_NEAR(r.makespan, opt, 1e-9 * opt) << algorithm_name(a) << " seed=" << seed;
    }
  }
}

TEST(PropertyEdgeCases, OneJobManyMachines) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Instance inst = make_instance(Family::kTable, 1, 64, seed);
    double opt = 1e18;
    for (procs_t k = 1; k <= 64; ++k) opt = std::min(opt, inst.job(0).time(k));
    for (Algorithm a : {Algorithm::kMrt, Algorithm::kBounded}) {
      const ScheduleResult r = schedule_moldable(inst, 0.1, a);
      EXPECT_LE(r.makespan, 1.6 * opt * (1 + 1e-9)) << algorithm_name(a);
    }
  }
}

TEST(PropertyEdgeCases, EqualJobsTightPacking) {
  // n = m identical sequential-ish jobs: OPT = t1; guarantee must hold
  // against the *known* optimum, not just omega.
  const Instance inst = jobs::perfect_tiling_instance(24, 7.0);
  for (Algorithm a : {Algorithm::kMrt, Algorithm::kCompressible, Algorithm::kBounded,
                      Algorithm::kBoundedLinear}) {
    const ScheduleResult r = schedule_moldable(inst, 0.1, a);
    ASSERT_TRUE(sched::validate(r.schedule, inst).ok);
    EXPECT_LE(r.makespan, 1.6 * 7.0 * (1 + 1e-9)) << algorithm_name(a);
  }
}

}  // namespace
}  // namespace moldable::core
