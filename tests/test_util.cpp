// Unit tests for src/util: PRNG determinism/distribution and table printing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "src/util/common.hpp"
#include "src/util/prng.hpp"
#include "src/util/table.hpp"

namespace moldable {
namespace {

TEST(Prng, DeterministicForSameSeed) {
  util::Prng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Prng, DifferentSeedsDiffer) {
  util::Prng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Prng, UniformIntRespectsBounds) {
  util::Prng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 5);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 9u);  // all 9 values hit with overwhelming probability
}

TEST(Prng, UniformIntSingleton) {
  util::Prng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Prng, UniformIntRejectsInvertedRange) {
  util::Prng rng(7);
  EXPECT_THROW(rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(Prng, Uniform01InRange) {
  util::Prng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);  // crude mean check
}

TEST(Prng, LogUniformRangeAndSpread) {
  util::Prng rng(13);
  int low_decade = 0;
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.log_uniform(1.0, 1000.0);
    ASSERT_GE(v, 1.0 - 1e-12);
    ASSERT_LE(v, 1000.0 + 1e-9);
    if (v < 10) ++low_decade;
  }
  // Log-uniform over 3 decades: each decade holds ~1/3 of the mass.
  EXPECT_NEAR(low_decade / 2000.0, 1.0 / 3, 0.06);
}

TEST(Prng, LogUniformValidatesArgs) {
  util::Prng rng(1);
  EXPECT_THROW(rng.log_uniform(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.log_uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Prng, BernoulliExtremes) {
  util::Prng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(LeqTol, BasicSemantics) {
  EXPECT_TRUE(leq_tol(1.0, 1.0));
  EXPECT_TRUE(leq_tol(1.0, 1.0 + 1e-12));
  EXPECT_TRUE(leq_tol(1.0 + 1e-12, 1.0));  // within tolerance
  EXPECT_FALSE(leq_tol(1.0 + 1e-6, 1.0));
  EXPECT_TRUE(leq_tol(0.0, 0.0));
  EXPECT_TRUE(leq_tol(1e9, 1e9 * (1 + 1e-12)));
}

TEST(CheckInvariant, ThrowsInternalError) {
  EXPECT_NO_THROW(check_invariant(true, "fine"));
  EXPECT_THROW(check_invariant(false, "boom"), internal_error);
}

TEST(Table, PrintsHeaderAndRows) {
  util::Table t({"name", "value"});
  t.add_row({"alpha", "1.5"});
  t.add_row({"beta", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
  util::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Fmt, SignificantDigits) {
  EXPECT_EQ(util::fmt(1.23456, 3), "1.23");
  EXPECT_EQ(util::fmt(1000.0, 4), "1000");
}

}  // namespace
}  // namespace moldable

namespace moldable {
namespace {

TEST(Table, CsvOutputAndQuoting) {
  util::Table t({"name", "value"});
  t.add_row({"plain", "1"});
  t.add_row({"with,comma", "quote\"inside"});
  std::ostringstream os;
  t.print_csv(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name,value\n"), std::string::npos);
  EXPECT_NE(s.find("plain,1\n"), std::string::npos);
  EXPECT_NE(s.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"quote\"\"inside\""), std::string::npos);
}

}  // namespace
}  // namespace moldable

#include "src/util/parallel.hpp"

namespace moldable {
namespace {

TEST(ParallelFor, CoversEveryIndexOnce) {
  std::vector<int> hits(1000, 0);
  util::parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; }, 4);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, SerialFallbackAndEmpty) {
  int count = 0;
  util::parallel_for(0, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  util::parallel_for(5, [&](std::size_t) { ++count; }, 1);
  EXPECT_EQ(count, 5);
}

TEST(ParallelFor, PropagatesWorkerExceptions) {
  EXPECT_THROW(util::parallel_for(
                   100,
                   [&](std::size_t i) {
                     if (i == 57) throw std::runtime_error("boom");
                   },
                   4),
               std::runtime_error);
}

}  // namespace
}  // namespace moldable
