// Tests for geometric sets (Definition 13 / Lemma 14) and the adaptive
// normalization grid (Lemma 12 / Figure 4).
#include <gtest/gtest.h>

#include <cmath>

#include "src/knapsack/geom_grid.hpp"

namespace moldable::knapsack {
namespace {

TEST(GeomSet, ContainsEndpointsAndRatio) {
  const auto g = geom_set(2.0, 32.0, 2.0);
  ASSERT_GE(g.size(), 5u);
  EXPECT_DOUBLE_EQ(g.front(), 2.0);
  // Last element reaches or overshoots U by < x.
  EXPECT_GE(g.back(), 32.0);
  EXPECT_LT(g.back(), 64.0 * (1 + 1e-12));
  for (std::size_t i = 1; i < g.size(); ++i) EXPECT_NEAR(g[i] / g[i - 1], 2.0, 1e-9);
}

TEST(GeomSet, SingleElementWhenLEqualsU) {
  const auto g = geom_set(5.0, 5.0, 1.5);
  ASSERT_EQ(g.size(), 1u);
  EXPECT_DOUBLE_EQ(g[0], 5.0);
}

TEST(GeomSet, ValidatesArguments) {
  EXPECT_THROW(geom_set(0.0, 1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(geom_set(2.0, 1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(geom_set(1.0, 2.0, 1.0), std::invalid_argument);
}

TEST(GeomSet, Lemma14CardinalityBound) {
  // |geom(L, U, x)| = O(log(U/L)/(x-1)) for 1 < x < 2.
  for (double x : {1.01, 1.1, 1.5, 1.9}) {
    for (double ratio : {10.0, 1e3, 1e6}) {
      const auto g = geom_set(1.0, ratio, x);
      const double bound = 2 * std::log(ratio) / (x - 1) + 2;
      EXPECT_LE(static_cast<double>(g.size()), bound) << "x=" << x << " U/L=" << ratio;
    }
  }
}

TEST(GeomRounding, DownAndUpAreGridValuesBracketingA) {
  const double L = 1.0, U = 100.0, x = 1.3;
  for (double a : {1.0, 1.29, 1.31, 7.7, 42.0, 99.0}) {
    const double down = round_down_geom(a, L, U, x);
    const double up = round_up_geom(a, L, U, x);
    EXPECT_LE(down, a * (1 + 1e-9));
    EXPECT_GE(up, a * (1 - 1e-9));
    EXPECT_GE(a / down, 1 - 1e-9);
    EXPECT_LT(a / down, x * (1 + 1e-9));  // down loses at most factor x
    EXPECT_LT(up / a, x * (1 + 1e-9));    // up gains at most factor x
  }
}

TEST(GeomRounding, ExactGridValuesAreFixedPoints) {
  const double L = 2.0, U = 64.0, x = 2.0;
  for (double v : {2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    EXPECT_NEAR(round_down_geom(v, L, U, x), v, 1e-9);
    EXPECT_NEAR(round_up_geom(v, L, U, x), v, 1e-9);
  }
}

TEST(GeomRounding, OutOfRangeThrows) {
  EXPECT_THROW(round_down_geom(0.5, 1.0, 10.0, 2.0), std::invalid_argument);
  EXPECT_THROW(round_up_geom(100.0, 1.0, 10.0, 2.0), std::invalid_argument);
}

// ------------------------------------------------------ NormalizationGrid ---

TEST(NormalizationGrid, NormalizeIsMonotoneUnderestimate) {
  const double rho = 0.1;
  const std::vector<double> caps = geom_set(10.0 / (1 - rho), 1000.0, 1.0 / (1 - rho));
  const NormalizationGrid grid(caps, 10.0, rho, 5);
  double prev = 0;
  for (double s = 0.5; s < grid.max_value(); s *= 1.17) {
    const auto n = grid.normalize(s);
    ASSERT_TRUE(n.has_value());
    EXPECT_LE(*n, s * (1 + 1e-9));
    EXPECT_GE(*n, prev - 1e-12);  // monotone
    prev = *n;
  }
  EXPECT_FALSE(grid.normalize(grid.max_value() * 1.5).has_value());
  EXPECT_DOUBLE_EQ(grid.normalize(0.0).value(), 0.0);
}

TEST(NormalizationGrid, UnderestimateBoundedBySubintervalWidth) {
  // Within [alpha_{i-1}, alpha_i) the loss is < U_i = rho/((1-rho) nbar) a_i.
  const double rho = 0.125;
  const procs_t nbar = 8;
  const std::vector<double> caps = geom_set(16.0 / (1 - rho), 4096.0, 1.0 / (1 - rho));
  const NormalizationGrid grid(caps, 16.0, rho, nbar);
  for (double s = 16.0; s <= grid.max_value(); s *= 1.07) {
    const auto n = grid.normalize(s);
    ASSERT_TRUE(n.has_value());
    // Conservative bound: U at the largest capacity covering s.
    const double umax = rho / ((1 - rho) * static_cast<double>(nbar)) * (s / (1 - rho));
    EXPECT_LE(s - *n, umax + 1e-9) << "s=" << s;
  }
}

TEST(NormalizationGrid, Lemma12IntervalCounts) {
  // Each interval I(i) gets O(nbar) subintervals: (1-rho) nbar + 1 plus
  // slack for boundary effects (Eq. (16)).
  const double rho = 0.1;
  const procs_t nbar = 20;
  const std::vector<double> caps = geom_set(50.0 / (1 - rho), 1e6, 1.0 / (1 - rho));
  const NormalizationGrid grid(caps, 50.0, rho, nbar);
  for (std::size_t c : grid.per_interval_counts())
    EXPECT_LE(c, static_cast<std::size_t>((1 - rho) * nbar) + 2);
  // Total size O(nbar * |A|).
  EXPECT_LE(grid.size(), (static_cast<std::size_t>(nbar) + 2) * (caps.size() + 2));
}

TEST(NormalizationGrid, ValidatesArguments) {
  EXPECT_THROW(NormalizationGrid({}, 1.0, 0.1, 5), std::invalid_argument);
  EXPECT_THROW(NormalizationGrid({10.0}, 0.0, 0.1, 5), std::invalid_argument);
  EXPECT_THROW(NormalizationGrid({10.0}, 20.0, 0.1, 5), std::invalid_argument);
  EXPECT_THROW(NormalizationGrid({10.0}, 1.0, 0.9, 5), std::invalid_argument);
}

}  // namespace
}  // namespace moldable::knapsack
