// Tests for the processing-time oracle families: values, (P1) non-increasing
// times, and (P2) monotone work — the standing assumptions of the paper.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/jobs/job.hpp"
#include "src/jobs/processing_time.hpp"

namespace moldable::jobs {
namespace {

TEST(AmdahlTime, ValuesMatchFormula) {
  AmdahlTime f(100.0, 0.8);
  EXPECT_DOUBLE_EQ(f.at(1), 100.0);
  EXPECT_DOUBLE_EQ(f.at(2), 100.0 * (0.2 + 0.4));
  EXPECT_DOUBLE_EQ(f.at(4), 100.0 * (0.2 + 0.2));
  // Amdahl asymptote: the serial fraction remains.
  EXPECT_NEAR(f.at(1'000'000'000), 20.0, 1e-3);
}

TEST(AmdahlTime, ZeroFractionIsConstant) {
  AmdahlTime f(5.0, 0.0);
  EXPECT_DOUBLE_EQ(f.at(1), 5.0);
  EXPECT_DOUBLE_EQ(f.at(1 << 20), 5.0);
}

TEST(AmdahlTime, ValidatesArguments) {
  EXPECT_THROW(AmdahlTime(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(AmdahlTime(-1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(AmdahlTime(1.0, 1.5), std::invalid_argument);
  EXPECT_THROW(AmdahlTime(1.0, -0.1), std::invalid_argument);
  AmdahlTime ok(1.0, 0.5);
  EXPECT_THROW(ok.at(0), std::invalid_argument);
}

TEST(PowerLawTime, ValuesMatchFormula) {
  PowerLawTime f(64.0, 0.5);
  EXPECT_DOUBLE_EQ(f.at(1), 64.0);
  EXPECT_DOUBLE_EQ(f.at(4), 32.0);
  EXPECT_DOUBLE_EQ(f.at(16), 16.0);
}

TEST(PowerLawTime, AlphaOneIsLinearSpeedup) {
  PowerLawTime f(100.0, 1.0);
  EXPECT_DOUBLE_EQ(f.at(10), 10.0);
  // Work is constant with alpha = 1 (the boundary of monotone work).
  EXPECT_NEAR(1.0 * f.at(1), 10.0 * f.at(10), 1e-12);
}

TEST(PowerLawTime, ValidatesArguments) {
  EXPECT_THROW(PowerLawTime(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(PowerLawTime(1.0, 1.1), std::invalid_argument);
  EXPECT_THROW(PowerLawTime(0.0, 0.5), std::invalid_argument);
}

TEST(CommOverheadTime, PlateausAtMinimizer) {
  // t1 = 100, c = 1: raw curve minimized at sqrt(100) = 10.
  CommOverheadTime f(100.0, 1.0);
  EXPECT_EQ(f.plateau(), 10);
  EXPECT_DOUBLE_EQ(f.at(10), 100.0 / 10 + 1.0 * 9);
  // Beyond the plateau the time freezes (keeps P1).
  EXPECT_DOUBLE_EQ(f.at(11), f.at(10));
  EXPECT_DOUBLE_EQ(f.at(1000), f.at(10));
}

TEST(CommOverheadTime, ValidatesArguments) {
  EXPECT_THROW(CommOverheadTime(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(CommOverheadTime(1.0, 0.0), std::invalid_argument);
}

TEST(LinearReductionTime, MatchesReductionFormula) {
  // t(k) = m*a - k + 1 with m = 4, a = 5.
  LinearReductionTime f(4, 5);
  EXPECT_DOUBLE_EQ(f.at(1), 20.0);
  EXPECT_DOUBLE_EQ(f.at(4), 17.0);
  EXPECT_THROW(f.at(5), std::invalid_argument);  // k > m is out of contract
  EXPECT_THROW(LinearReductionTime(4, 1), std::invalid_argument);  // a >= 2
}

TEST(LinearReductionTime, StrictWorkMonotony) {
  // Eq. (1): w(k+1) - w(k) = m*a - 2k > 0 for k < m when a >= 2.
  LinearReductionTime f(8, 3);
  for (procs_t k = 1; k < 8; ++k) {
    const double w0 = static_cast<double>(k) * f.at(k);
    const double w1 = static_cast<double>(k + 1) * f.at(k + 1);
    EXPECT_GT(w1, w0) << "k=" << k;
  }
}

TEST(TableTime, AcceptsValidAndRejectsInvalid) {
  TableTime ok({10.0, 6.0, 5.0});
  EXPECT_DOUBLE_EQ(ok.at(2), 6.0);
  EXPECT_EQ(ok.max_procs(), 3);
  // (P1) violated: increasing time.
  EXPECT_THROW(TableTime({5.0, 6.0}), std::invalid_argument);
  // (P2) violated: w(1) = 10 but w(2) = 8.
  EXPECT_THROW(TableTime({10.0, 4.0}), std::invalid_argument);
  // The same table is fine when work monotony is not demanded.
  TableTime relaxed({10.0, 4.0}, /*require_monotone_work=*/false);
  EXPECT_DOUBLE_EQ(relaxed.at(2), 4.0);
  EXPECT_THROW(TableTime({}), std::invalid_argument);
  EXPECT_THROW(TableTime({0.0}), std::invalid_argument);
}

TEST(TableTime, RangeChecked) {
  TableTime f({3.0, 2.0});
  EXPECT_THROW(f.at(0), std::invalid_argument);
  EXPECT_THROW(f.at(3), std::invalid_argument);
}

TEST(RigidStepTime, StepSemantics) {
  RigidStepTime f(3.0, 4, 1e6);
  EXPECT_DOUBLE_EQ(f.at(3), 1e6);
  EXPECT_DOUBLE_EQ(f.at(4), 3.0);
  EXPECT_DOUBLE_EQ(f.at(100), 3.0);
  EXPECT_THROW(RigidStepTime(3.0, 0, 1e6), std::invalid_argument);
  EXPECT_THROW(RigidStepTime(3.0, 4, 1.0), std::invalid_argument);
}

// ----------------------------------------------------- monotony checking ---

class MonotoneFamilyTest : public ::testing::TestWithParam<int> {};

PtfPtr make_family(int which) {
  switch (which) {
    case 0: return std::make_shared<AmdahlTime>(37.0, 0.73);
    case 1: return std::make_shared<PowerLawTime>(41.0, 0.61);
    case 2: return std::make_shared<CommOverheadTime>(53.0, 0.02);
    case 3: return std::make_shared<LinearReductionTime>(512, 7);
    default: return std::make_shared<AmdahlTime>(5.0, 0.0);
  }
}

TEST_P(MonotoneFamilyTest, SatisfiesP1AndP2Exhaustively) {
  const auto f = make_family(GetParam());
  const MonotonyReport r = check_monotony(*f, 512, /*exhaustive_limit=*/512);
  EXPECT_TRUE(r.time_nonincreasing) << "violation at k=" << r.first_violation;
  EXPECT_TRUE(r.work_nondecreasing) << "violation at k=" << r.first_violation;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, MonotoneFamilyTest, ::testing::Range(0, 5));

TEST(CheckMonotony, SampledLargeM) {
  AmdahlTime f(100.0, 0.9);
  const MonotonyReport r = check_monotony(f, procs_t{1} << 40);
  EXPECT_TRUE(r.time_nonincreasing);
  EXPECT_TRUE(r.work_nondecreasing);
}

TEST(CheckMonotony, DetectsRigidWorkViolation) {
  RigidStepTime f(3.0, 64, 1e6);
  const MonotonyReport r = check_monotony(f, 256, 256);
  EXPECT_TRUE(r.time_nonincreasing);   // (P1) holds for the step function
  EXPECT_FALSE(r.work_nondecreasing);  // (P2) fails below the step
  EXPECT_GT(r.first_violation, 0);
}

TEST(CheckMonotony, SingleMachineTrivial) {
  AmdahlTime f(1.0, 0.5);
  const MonotonyReport r = check_monotony(f, 1);
  EXPECT_TRUE(r.time_nonincreasing);
  EXPECT_TRUE(r.work_nondecreasing);
}

}  // namespace
}  // namespace moldable::jobs

namespace moldable::jobs {
namespace {

TEST(ScaledTime, ScalesUniformly) {
  auto inner = std::make_shared<AmdahlTime>(10.0, 0.5);
  ScaledTime f(inner, 2.5);
  for (procs_t k : {1, 2, 7, 100}) EXPECT_DOUBLE_EQ(f.at(k), 2.5 * inner->at(k));
  EXPECT_DOUBLE_EQ(f.factor(), 2.5);
}

TEST(ScaledTime, PreservesMonotony) {
  auto inner = std::make_shared<PowerLawTime>(20.0, 0.7);
  ScaledTime f(inner, 0.1);
  const MonotonyReport r = check_monotony(f, 512, 512);
  EXPECT_TRUE(r.time_nonincreasing);
  EXPECT_TRUE(r.work_nondecreasing);
}

TEST(ScaledTime, ValidatesArguments) {
  EXPECT_THROW(ScaledTime(nullptr, 2.0), std::invalid_argument);
  EXPECT_THROW(ScaledTime(std::make_shared<AmdahlTime>(1.0, 0.5), 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace moldable::jobs

namespace moldable::jobs {
namespace {

TEST(LogSpeedupTime, ValuesAndMonotony) {
  LogSpeedupTime f(60.0);
  EXPECT_DOUBLE_EQ(f.at(1), 60.0);
  EXPECT_DOUBLE_EQ(f.at(2), 30.0);
  EXPECT_DOUBLE_EQ(f.at(4), 20.0);
  const MonotonyReport r = check_monotony(f, 4096, 4096);
  EXPECT_TRUE(r.time_nonincreasing);
  EXPECT_TRUE(r.work_nondecreasing);
  EXPECT_THROW(LogSpeedupTime(0.0), std::invalid_argument);
  EXPECT_THROW(f.at(0), std::invalid_argument);
}

TEST(LogSpeedupTime, GammaGrowsExponentiallyInDemandedSpeedup) {
  // Halving the target time requires squaring-ish the processor count.
  const Job j(std::make_shared<LogSpeedupTime>(100.0), procs_t{1} << 40);
  const auto g2 = j.gamma(50.0);   // speedup 2 -> 1+log2 k = 2 -> k = 2
  const auto g4 = j.gamma(25.0);   // speedup 4 -> k = 8
  ASSERT_TRUE(g2 && g4);
  EXPECT_EQ(*g2, 2);
  EXPECT_EQ(*g4, 8);
}

}  // namespace
}  // namespace moldable::jobs
