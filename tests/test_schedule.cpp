// Tests for the Schedule representation: makespan/work/peak computations,
// processor assignment realizability, and the Gantt renderer.
#include <gtest/gtest.h>

#include <set>

#include "src/jobs/generators.hpp"
#include "src/sched/schedule.hpp"

namespace moldable::sched {
namespace {

using jobs::Family;
using jobs::Instance;
using jobs::make_instance;

TEST(Schedule, EmptySchedule) {
  Schedule s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.makespan(), 0.0);
  EXPECT_DOUBLE_EQ(s.total_work(), 0.0);
  EXPECT_EQ(s.peak_procs(), 0);
}

TEST(Schedule, MakespanAndWork) {
  Schedule s;
  s.add({0, 0.0, 2, 3.0});   // ends 3
  s.add({1, 1.0, 1, 5.0});   // ends 6
  s.add({2, 4.0, 4, 1.0});   // ends 5
  EXPECT_DOUBLE_EQ(s.makespan(), 6.0);
  EXPECT_DOUBLE_EQ(s.total_work(), 2 * 3.0 + 1 * 5.0 + 4 * 1.0);
}

TEST(Schedule, PeakProcsCountsOverlapOnly) {
  Schedule s;
  s.add({0, 0.0, 3, 2.0});
  s.add({1, 2.0, 3, 2.0});  // back to back: no overlap
  EXPECT_EQ(s.peak_procs(), 3);
  s.add({2, 1.0, 2, 2.0});  // overlaps both
  EXPECT_EQ(s.peak_procs(), 5);
}

TEST(AssignProcessors, ProducesDisjointSets) {
  Schedule s;
  s.add({0, 0.0, 2, 4.0});
  s.add({1, 0.0, 2, 2.0});
  s.add({2, 2.0, 2, 2.0});  // reuses job 1's processors
  const auto assignment = assign_processors(s, 4);
  ASSERT_EQ(assignment.size(), 3u);
  EXPECT_EQ(assignment[0].size(), 2u);
  // Jobs 0 and 1 overlap: all four processors distinct.
  std::set<procs_t> first_two(assignment[0].begin(), assignment[0].end());
  for (procs_t p : assignment[1]) EXPECT_EQ(first_two.count(p), 0u);
}

TEST(AssignProcessors, ThrowsOnCapacityViolation) {
  Schedule s;
  s.add({0, 0.0, 3, 1.0});
  s.add({1, 0.5, 2, 1.0});
  EXPECT_THROW(assign_processors(s, 4), internal_error);
}

TEST(AssignProcessors, RefusesHugeM) {
  Schedule s;
  s.add({0, 0.0, 1, 1.0});
  EXPECT_THROW(assign_processors(s, procs_t{1} << 40), std::invalid_argument);
}

TEST(RenderGantt, ContainsProcessorRows) {
  const Instance inst = make_instance(Family::kAmdahl, 3, 4, 5);
  Schedule s;
  for (std::size_t j = 0; j < 3; ++j) s.add({j, 0.0, 1, inst.job(j).t1()});
  const std::string g = render_gantt(s, inst, 40);
  EXPECT_NE(g.find("P0"), std::string::npos);
  EXPECT_NE(g.find("P3"), std::string::npos);
  EXPECT_NE(g.find("makespan"), std::string::npos);
}

}  // namespace
}  // namespace moldable::sched
