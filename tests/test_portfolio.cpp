// Portfolio-engine tests: spec parsing, the combined-certificate semantics
// (min makespan / max lower bound), winner selection determinism across
// thread counts, all-variants-fail isolation, and the single-variant
// degeneration to plain BatchSolver behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "src/engine/batch_solver.hpp"
#include "src/engine/portfolio.hpp"
#include "src/jobs/generators.hpp"

namespace moldable::engine {
namespace {

using jobs::Family;
using jobs::Instance;
using jobs::make_instance;

std::vector<Instance> small_batch(std::size_t count, procs_t m = 64) {
  std::vector<Instance> batch;
  const auto families = jobs::all_families();
  for (std::size_t i = 0; i < count; ++i)
    batch.push_back(make_instance(families[i % families.size()], 16, m, 100 + i));
  return batch;
}

TEST(PortfolioSpec, ParsesAndTrims) {
  EXPECT_EQ(parse_portfolio_spec("fptas,mrt"),
            (std::vector<std::string>{"fptas", "mrt"}));
  EXPECT_EQ(parse_portfolio_spec(" fptas ,\tmrt , lt-2approx"),
            (std::vector<std::string>{"fptas", "mrt", "lt-2approx"}));
  EXPECT_EQ(parse_portfolio_spec("auto"), (std::vector<std::string>{"auto"}));
}

TEST(PortfolioSpec, RejectsEmptyAndDuplicates) {
  EXPECT_THROW(parse_portfolio_spec(""), std::invalid_argument);
  EXPECT_THROW(parse_portfolio_spec("fptas,,mrt"), std::invalid_argument);
  EXPECT_THROW(parse_portfolio_spec("fptas,"), std::invalid_argument);
  EXPECT_THROW(parse_portfolio_spec("mrt,mrt"), std::invalid_argument);
  // Duplicates must be caught after trimming (the canonical name is what
  // would race twice), and the diagnostic must name the offender clearly.
  EXPECT_THROW(parse_portfolio_spec("fptas, fptas"), std::invalid_argument);
  EXPECT_THROW(parse_portfolio_spec("fptas,mrt,exact,mrt"), std::invalid_argument);
  try {
    parse_portfolio_spec("fptas,fptas");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("duplicate"), std::string::npos) << what;
    EXPECT_NE(what.find("'fptas'"), std::string::npos) << what;
  }
}

TEST(PortfolioSolver, InvalidConfigThrowsUpFront) {
  const auto batch = small_batch(2);
  PortfolioConfig empty;
  EXPECT_THROW(PortfolioSolver().solve(batch, empty), std::invalid_argument);

  PortfolioConfig unknown;
  unknown.variants = {"mrt", "no-such-solver"};
  try {
    PortfolioSolver().solve(batch, unknown);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("known:"), std::string::npos);
  }

  PortfolioConfig duplicate;
  duplicate.variants = {"mrt", "mrt"};
  EXPECT_THROW(PortfolioSolver().solve(batch, duplicate), std::invalid_argument);

  PortfolioConfig bad_eps;
  bad_eps.variants = {"mrt"};
  bad_eps.eps = 0;
  EXPECT_THROW(PortfolioSolver().solve(batch, bad_eps), std::invalid_argument);
}

TEST(PortfolioSolver, SingleVariantDegeneratesToBatchSolver) {
  const auto batch = small_batch(12);
  PortfolioConfig pc;
  pc.variants = {"algorithm1"};
  pc.eps = 0.25;
  const PortfolioResult p = PortfolioSolver().solve(batch, pc);

  BatchConfig bc;
  bc.algorithm = "algorithm1";
  bc.eps = 0.25;
  const BatchResult b = BatchSolver().solve(batch, bc);

  ASSERT_EQ(p.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < p.outcomes.size(); ++i) {
    ASSERT_TRUE(p.outcomes[i].ok) << i;
    EXPECT_EQ(p.outcomes[i].winner, "algorithm1");
    EXPECT_DOUBLE_EQ(p.outcomes[i].makespan, b.outcomes[i].makespan);
    EXPECT_DOUBLE_EQ(p.outcomes[i].lower_bound, b.outcomes[i].lower_bound);
    EXPECT_DOUBLE_EQ(p.outcomes[i].ratio, b.outcomes[i].ratio);
    EXPECT_DOUBLE_EQ(p.outcomes[i].guarantee, b.outcomes[i].guarantee);
  }
  ASSERT_EQ(p.per_variant.size(), 1u);
  EXPECT_EQ(p.per_variant[0].wins, p.solved);
  EXPECT_EQ(p.per_variant[0].solved, p.solved);
  EXPECT_DOUBLE_EQ(p.per_variant[0].gap_mean, 0.0);
  EXPECT_DOUBLE_EQ(p.per_variant[0].gap_max, 0.0);
}

TEST(PortfolioSolver, CombinedCertificateIsAtLeastAsTightAsEveryVariant) {
  const auto batch = small_batch(18);
  PortfolioConfig pc;
  pc.variants = {"mrt", "algorithm1", "lt-2approx"};
  pc.eps = 0.3;
  const PortfolioResult r = PortfolioSolver().solve(batch, pc);
  EXPECT_EQ(r.solved, batch.size());

  for (const PortfolioOutcome& o : r.outcomes) {
    ASSERT_TRUE(o.ok) << o.index;
    ASSERT_EQ(o.attempts.size(), 3u);
    bool winner_attains_best = false;
    for (const VariantAttempt& a : o.attempts) {
      if (!a.ok) continue;
      EXPECT_LE(o.makespan, a.makespan) << o.index << " " << a.algorithm;
      EXPECT_GE(o.lower_bound, a.lower_bound) << o.index << " " << a.algorithm;
      EXPECT_LE(o.ratio, a.ratio + 1e-12) << o.index << " " << a.algorithm;
      if (a.algorithm == o.winner) {
        winner_attains_best = a.makespan == o.makespan;
        EXPECT_GE(o.guarantee, 0);
        EXPECT_LE(o.guarantee, a.guarantee);
      }
    }
    EXPECT_TRUE(winner_attains_best) << o.index;
    EXPECT_GE(o.ratio, 1.0 - 1e-9) << o.index;
  }
}

TEST(PortfolioSolver, DeterministicAcrossThreadCounts) {
  const auto batch = small_batch(24);
  PortfolioConfig serial;
  serial.variants = {"mrt", "algorithm3-linear", "lt-2approx"};
  serial.threads = 1;
  PortfolioConfig parallel = serial;
  parallel.threads = 5;

  const PortfolioResult a = PortfolioSolver().solve(batch, serial);
  const PortfolioResult b = PortfolioSolver().solve(batch, parallel);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.digest(), PortfolioSolver().solve(batch, serial).digest());

  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    const PortfolioOutcome& x = a.outcomes[i];
    const PortfolioOutcome& y = b.outcomes[i];
    EXPECT_EQ(x.ok, y.ok);
    EXPECT_DOUBLE_EQ(x.makespan, y.makespan);
    EXPECT_DOUBLE_EQ(x.lower_bound, y.lower_bound);
    EXPECT_DOUBLE_EQ(x.ratio, y.ratio);
    EXPECT_DOUBLE_EQ(x.guarantee, y.guarantee);
    // Winner identity is deterministic whenever the best makespan is
    // attained by exactly one variant (wall time only breaks exact ties).
    std::size_t best_count = 0;
    for (const VariantAttempt& att : x.attempts)
      if (att.ok && att.makespan == x.makespan) ++best_count;
    if (best_count == 1) {
      EXPECT_EQ(x.winner, y.winner) << i;
    }
    ASSERT_EQ(x.attempts.size(), y.attempts.size());
    for (std::size_t v = 0; v < x.attempts.size(); ++v) {
      EXPECT_EQ(x.attempts[v].ok, y.attempts[v].ok);
      EXPECT_DOUBLE_EQ(x.attempts[v].makespan, y.attempts[v].makespan);
      EXPECT_DOUBLE_EQ(x.attempts[v].lower_bound, y.attempts[v].lower_bound);
    }
  }
}

TEST(PortfolioSolver, AllVariantsFailIsIsolatedToTheOffendingInstance) {
  // `exact` hard-caps at tiny instances and `fptas` requires a large machine
  // count relative to n: the middle instance violates both, so every variant
  // fails on it, while its neighbours solve via `exact`.
  std::vector<Instance> batch;
  batch.push_back(make_instance(Family::kMixed, 4, 8, 21));
  batch.push_back(make_instance(Family::kMixed, 40, 64, 22));  // over both caps
  batch.push_back(make_instance(Family::kMixed, 4, 8, 23));
  PortfolioConfig pc;
  pc.variants = {"exact", "fptas"};
  pc.eps = 0.5;
  pc.threads = 2;
  const PortfolioResult r = PortfolioSolver().solve(batch, pc);
  EXPECT_EQ(r.solved, 2u);
  EXPECT_EQ(r.failed, 1u);
  EXPECT_TRUE(r.outcomes[0].ok);
  EXPECT_FALSE(r.outcomes[1].ok);
  EXPECT_TRUE(r.outcomes[1].winner.empty());
  for (const VariantAttempt& a : r.outcomes[1].attempts) {
    EXPECT_FALSE(a.ok);
    EXPECT_FALSE(a.error.empty()) << a.algorithm;
  }
  EXPECT_TRUE(r.outcomes[2].ok);
  EXPECT_EQ(r.outcomes[0].winner, "exact");
  // fptas never solves anything here. On the tiny outer instances `exact`
  // completes at the certified lower bound (omega == OPT for these), so the
  // early-cancel rule excludes fptas there — only the middle instance, where
  // exact itself fails, records an fptas *failure*.
  ASSERT_EQ(r.per_variant.size(), 2u);
  EXPECT_EQ(r.per_variant[1].algorithm, "fptas");
  EXPECT_EQ(r.per_variant[1].solved, 0u);
  EXPECT_EQ(r.per_variant[1].failed, 1u);
  EXPECT_EQ(r.per_variant[1].cancelled, 2u);
  EXPECT_EQ(r.outcomes[0].attempts[1].outcome, AttemptOutcome::kCancelled);
  EXPECT_EQ(r.outcomes[1].attempts[1].outcome, AttemptOutcome::kFailed);
  EXPECT_EQ(r.outcomes[2].attempts[1].outcome, AttemptOutcome::kCancelled);
  EXPECT_EQ(r.cancelled_attempts, 2u);
  EXPECT_GT(r.per_variant[1].wall_total, 0);
}

Instance memory_capped(std::uint64_t seed) {
  Instance inst = make_instance(Family::kAmdahl, 4, 8, seed);
  inst.set_memory_capacity(4.0);
  inst.set_job_memory({10.0, 1.0, 6.0, 3.0});  // kmin = {3, 1, 2, 1}
  return inst;
}

TEST(PortfolioSolver, MemoryBlindVariantsAreDroppedFromCappedInstances) {
  // A mixed portfolio degrades gracefully: the memory-constrained middle
  // instance races only the memory-aware lane, its neighbours race both.
  std::vector<Instance> batch;
  batch.push_back(make_instance(Family::kAmdahl, 4, 8, 31));
  batch.push_back(memory_capped(32));
  batch.push_back(make_instance(Family::kAmdahl, 4, 8, 33));
  PortfolioConfig pc;
  pc.variants = {"lt-2approx", "mem-greedy"};
  pc.eps = 0.5;
  const PortfolioResult r = PortfolioSolver().solve(batch, pc);
  EXPECT_EQ(r.solved, 3u);
  EXPECT_EQ(r.failed, 0u);
  ASSERT_EQ(r.outcomes[1].attempts.size(), 1u);  // blind lane dropped, not failed
  EXPECT_EQ(r.outcomes[1].attempts[0].algorithm, "mem-greedy");
  EXPECT_EQ(r.outcomes[1].winner, "mem-greedy");
  EXPECT_EQ(r.outcomes[0].attempts.size(), 2u);
  EXPECT_EQ(r.outcomes[2].attempts.size(), 2u);

  // The filter is part of the deterministic plan: digests match across
  // thread counts.
  PortfolioConfig serial = pc;
  serial.threads = 1;
  PortfolioConfig parallel = pc;
  parallel.threads = 4;
  EXPECT_EQ(PortfolioSolver().solve(batch, serial).digest(),
            PortfolioSolver().solve(batch, parallel).digest());
}

TEST(PortfolioSolver, AllBlindPortfolioFailsClosedOnCappedInstance) {
  std::vector<Instance> batch;
  batch.push_back(memory_capped(41));
  PortfolioConfig pc;
  pc.variants = {"lt-2approx", "algorithm1"};
  pc.eps = 0.5;
  const PortfolioResult r = PortfolioSolver().solve(batch, pc);
  EXPECT_EQ(r.solved, 0u);
  EXPECT_EQ(r.failed, 1u);
  EXPECT_FALSE(r.outcomes[0].ok);
  ASSERT_EQ(r.outcomes[0].attempts.size(), 2u);
  for (const VariantAttempt& a : r.outcomes[0].attempts) {
    EXPECT_FALSE(a.ok);
    EXPECT_NE(a.error.find("capability:"), std::string::npos) << a.error;
    EXPECT_NE(a.error.find(a.algorithm), std::string::npos) << a.error;
  }
}

TEST(PortfolioSolver, WinCountsAndLatencySplitAreConsistent) {
  const auto batch = small_batch(20);
  PortfolioConfig pc;
  pc.variants = {"algorithm1", "lt-2approx"};
  pc.threads = 3;
  const PortfolioResult r = PortfolioSolver().solve(batch, pc);
  ASSERT_EQ(r.per_variant.size(), 2u);

  std::size_t wins = 0;
  for (const VariantStats& s : r.per_variant) {
    wins += s.wins;
    EXPECT_LE(s.wall_p50, s.wall_p99);
    EXPECT_LE(s.wall_p99, s.wall_max);
    EXPECT_GE(s.gap_mean, 0);
    EXPECT_LE(s.gap_mean, s.gap_max + 1e-12);
  }
  EXPECT_EQ(wins, r.solved);  // exactly one winner per solved instance
  EXPECT_LE(r.queue_p50, r.queue_p99);
  EXPECT_LE(r.queue_p99, r.queue_max);

  for (const PortfolioOutcome& o : r.outcomes) {
    EXPECT_GE(o.queue_seconds, 0);
    double attempt_sum = 0;
    for (const VariantAttempt& a : o.attempts) attempt_sum += a.wall_seconds;
    EXPECT_DOUBLE_EQ(o.compute_seconds, attempt_sum);
  }
}

TEST(PortfolioSolver, OrderTieBreakIsDeterministicUnderExactTies) {
  // Two names bound to the same solver tie on every instance. Under
  // kPortfolioOrder the first-listed name must win everywhere, run after
  // run; the combined certificate is unaffected either way.
  AlgorithmRegistry registry;
  const SolverFn same = [](const Instance& i, const SolverConfig& c) {
    return core::schedule_moldable(i, c.eps);
  };
  registry.add("first", same);
  registry.add("second", same);

  const auto batch = small_batch(10);
  PortfolioConfig pc;
  pc.variants = {"second", "first"};  // deliberately not alphabetical
  pc.tie_break = TieBreak::kPortfolioOrder;
  pc.threads = 3;

  for (int run = 0; run < 3; ++run) {
    const PortfolioResult r = PortfolioSolver(registry).solve(batch, pc);
    EXPECT_EQ(r.solved, batch.size());
    for (const PortfolioOutcome& o : r.outcomes) EXPECT_EQ(o.winner, "second") << o.index;
    ASSERT_EQ(r.per_variant.size(), 2u);
    EXPECT_EQ(r.per_variant[0].wins, batch.size());  // "second" is listed first
    EXPECT_EQ(r.per_variant[1].wins, 0u);
  }

  // The tie-break changes only the label: digests match the wall-time mode.
  PortfolioConfig wall = pc;
  wall.tie_break = TieBreak::kWallTime;
  EXPECT_EQ(PortfolioSolver(registry).solve(batch, pc).digest(),
            PortfolioSolver(registry).solve(batch, wall).digest());
}

TEST(PortfolioSolver, WallPercentileLadderIncludesP90) {
  const auto batch = small_batch(30);
  PortfolioConfig pc;
  pc.variants = {"algorithm1", "lt-2approx"};
  pc.threads = 2;
  const PortfolioResult r = PortfolioSolver().solve(batch, pc);
  for (const VariantStats& s : r.per_variant) {
    EXPECT_LE(s.wall_p50, s.wall_p90) << s.algorithm;
    EXPECT_LE(s.wall_p90, s.wall_p99) << s.algorithm;
    EXPECT_LE(s.wall_p99, s.wall_max) << s.algorithm;
    EXPECT_GT(s.wall_p90, 0) << s.algorithm;  // 30 attempts: p90 is a real sample
  }
}

TEST(PortfolioSolver, MemoServesDuplicatesWithUnchangedDigest) {
  auto batch = small_batch(6);
  batch.push_back(batch[2]);  // intra-batch duplicate
  PortfolioConfig pc;
  pc.variants = {"mrt", "lt-2approx"};
  pc.threads = 3;

  const PortfolioResult plain = PortfolioSolver().solve(batch, pc);
  exec::MemoStore<PortfolioOutcome> store;
  const PortfolioResult memo = PortfolioSolver().solve(batch, pc, &store);
  EXPECT_EQ(plain.memo_hits, 0u);
  EXPECT_EQ(memo.memo_hits, 1u);
  EXPECT_EQ(memo.memo_misses, 6u);
  EXPECT_EQ(memo.digest(), plain.digest());
  // The served slot reports zero racing cost but the full outcome.
  const PortfolioOutcome& served = memo.outcomes.back();
  EXPECT_TRUE(served.ok);
  EXPECT_EQ(served.winner, memo.outcomes[2].winner);
  EXPECT_DOUBLE_EQ(served.compute_seconds, 0.0);

  // A second batch against the same store hits on every stored instance.
  const PortfolioResult replay = PortfolioSolver().solve(batch, pc, &store);
  EXPECT_EQ(replay.memo_hits, batch.size());
  EXPECT_EQ(replay.memo_misses, 0u);
  EXPECT_EQ(replay.digest(), plain.digest());
}

TEST(PortfolioSolver, ZeroJobInstanceMatchesBatchSolverRatioConvention) {
  // A zero-job instance has lower bound 0; both engines must report the
  // core convention (ratio 1), or the single-variant equivalence breaks.
  const std::vector<Instance> batch{Instance({}, 4, "empty")};
  PortfolioConfig pc;
  pc.variants = {"lt-2approx"};
  const PortfolioResult p = PortfolioSolver().solve(batch, pc);
  BatchConfig bc;
  bc.algorithm = "lt-2approx";
  const BatchResult b = BatchSolver().solve(batch, bc);
  ASSERT_TRUE(p.outcomes[0].ok) << p.outcomes[0].attempts[0].error;
  ASSERT_TRUE(b.outcomes[0].ok) << b.outcomes[0].error;
  EXPECT_DOUBLE_EQ(p.outcomes[0].ratio, b.outcomes[0].ratio);
  EXPECT_DOUBLE_EQ(p.outcomes[0].makespan, b.outcomes[0].makespan);
}

TEST(PortfolioSolver, EmptyBatch) {
  PortfolioConfig pc;
  pc.variants = {"mrt"};
  const PortfolioResult r = PortfolioSolver().solve({}, pc);
  EXPECT_TRUE(r.outcomes.empty());
  EXPECT_EQ(r.solved, 0u);
  EXPECT_EQ(r.failed, 0u);
  ASSERT_EQ(r.per_variant.size(), 1u);
  EXPECT_EQ(r.per_variant[0].wins, 0u);
  EXPECT_EQ(r.digest(), PortfolioSolver().solve({}, pc).digest());
}

}  // namespace
}  // namespace moldable::engine
