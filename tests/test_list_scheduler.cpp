// Tests for Graham-style list scheduling of rigid allotments, including the
// property the paper relies on in Section 3: makespan <= 2 max(A, T).
#include <gtest/gtest.h>

#include "src/jobs/generators.hpp"
#include "src/sched/list_scheduler.hpp"
#include "src/sched/validator.hpp"
#include "src/util/prng.hpp"

namespace moldable::sched {
namespace {

using jobs::Family;
using jobs::Instance;
using jobs::make_instance;

TEST(ListScheduler, SequentialJobsPackPerfectly) {
  const Instance inst = jobs::perfect_tiling_instance(8, 2.0);  // 8 jobs, m=8
  const std::vector<procs_t> ones(inst.size(), 1);
  const Schedule s = list_schedule(inst, ones);
  EXPECT_TRUE(validate(s, inst).ok);
  EXPECT_DOUBLE_EQ(s.makespan(), 2.0);  // all run in parallel
}

TEST(ListScheduler, SerializesWideJobs) {
  // Three jobs, each demanding all m processors: strictly sequential.
  const Instance inst = make_instance(Family::kIdentical, 3, 4, 9);
  const std::vector<procs_t> wide(inst.size(), 4);
  const Schedule s = list_schedule(inst, wide);
  EXPECT_TRUE(validate(s, inst).ok);
  double expect = 0;
  for (const auto& j : inst.jobs()) expect += j.time(4);
  EXPECT_NEAR(s.makespan(), expect, 1e-9);
}

TEST(ListScheduler, RespectsOrderForFirstStart) {
  const Instance inst = make_instance(Family::kAmdahl, 3, 2, 10);
  const std::vector<procs_t> alloc = {2, 2, 2};
  const std::vector<std::size_t> order = {2, 0, 1};
  const Schedule s = list_schedule(inst, alloc, order);
  // Job 2 must start first (at time 0).
  for (const auto& a : s.assignments())
    if (a.job == 2) {
      EXPECT_DOUBLE_EQ(a.start, 0.0);
    }
}

TEST(ListScheduler, ValidatesInputs) {
  const Instance inst = make_instance(Family::kAmdahl, 3, 4, 11);
  EXPECT_THROW(list_schedule(inst, {1, 1}), std::invalid_argument);
  EXPECT_THROW(list_schedule(inst, {1, 1, 5}), std::invalid_argument);
  EXPECT_THROW(list_schedule(inst, {1, 1, 0}), std::invalid_argument);
  EXPECT_THROW(list_schedule(inst, {1, 1, 1}, {0, 1}), std::invalid_argument);
}

// Property test: C <= 2 * max(A, T) across families, sizes and allotments.
struct LsCase {
  Family family;
  std::size_t n;
  procs_t m;
};

class ListBoundTest : public ::testing::TestWithParam<LsCase> {};

TEST_P(ListBoundTest, GareyGrahamFactorTwo) {
  const auto [family, n, m] = GetParam();
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Instance inst = make_instance(family, n, m, seed);
    util::Prng rng(seed * 77 + 1);
    std::vector<procs_t> alloc(n);
    for (auto& a : alloc) a = rng.uniform_int(1, m);
    const Schedule s = list_schedule(inst, alloc);
    ASSERT_TRUE(validate(s, inst).ok);

    double work = 0, tmax = 0;
    for (std::size_t j = 0; j < n; ++j) {
      work += inst.job(j).work(alloc[j]);
      tmax = std::max(tmax, inst.job(j).time(alloc[j]));
    }
    const double bound = 2 * std::max(work / static_cast<double>(m), tmax);
    EXPECT_LE(s.makespan(), bound * (1 + 1e-9))
        << jobs::family_name(family) << " n=" << n << " m=" << m << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ListBoundTest,
    ::testing::Values(LsCase{Family::kAmdahl, 20, 16}, LsCase{Family::kPowerLaw, 40, 8},
                      LsCase{Family::kCommOverhead, 30, 32},
                      LsCase{Family::kHighVariance, 50, 16},
                      LsCase{Family::kMixed, 25, 64}, LsCase{Family::kIdentical, 12, 4},
                      LsCase{Family::kSequentialOnly, 60, 16}),
    [](const auto& info) {
      return jobs::family_name(info.param.family) + "_n" +
             std::to_string(info.param.n) + "_m" + std::to_string(info.param.m);
    });

TEST(ListScheduler, NeverIdlesWhileAJobFits) {
  // Structural property: at any start event, the started job fits; between
  // consecutive events with waiting jobs, no waiting job fits. We verify
  // the weaker observable: capacity is valid and all jobs scheduled.
  const Instance inst = make_instance(Family::kMixed, 64, 32, 5);
  util::Prng rng(6);
  std::vector<procs_t> alloc(inst.size());
  for (auto& a : alloc) a = rng.uniform_int(1, 32);
  const Schedule s = list_schedule(inst, alloc);
  const auto v = validate(s, inst);
  EXPECT_TRUE(v.ok);
  EXPECT_EQ(s.size(), inst.size());
}

}  // namespace
}  // namespace moldable::sched
