// Tests for next-fit small-job insertion (Lemma 9).
#include <gtest/gtest.h>

#include "src/sched/small_jobs.hpp"
#include "src/util/common.hpp"

namespace moldable::sched {
namespace {

TEST(SmallJobs, FillsFreeWindows) {
  // Horizon 12; two processors with head 6 (free 6 each).
  Schedule s;
  const std::vector<ProcGroup> groups = {{2, 6.0, 0.0, false}};
  const std::vector<SmallJobRef> smalls = {{0, 4.0}, {1, 4.0}, {2, 2.0}};
  insert_small_jobs(s, groups, 12.0, smalls);
  ASSERT_EQ(s.size(), 3u);
  // Next-fit: job 0 at [6,10] on proc 1; job 1 does not fit after it (free
  // 2 < 4) -> proc 2 at [6,10]; job 2 fits after job 1 at [10,12].
  EXPECT_DOUBLE_EQ(s.assignments()[0].start, 6.0);
  EXPECT_DOUBLE_EQ(s.assignments()[1].start, 6.0);
  EXPECT_DOUBLE_EQ(s.assignments()[2].start, 10.0);
}

TEST(SmallJobs, RespectsTails) {
  Schedule s;
  // free window = [2, 12 - 5] = 5 long.
  const std::vector<ProcGroup> groups = {{1, 2.0, 5.0, false}};
  insert_small_jobs(s, groups, 12.0, {{0, 5.0}});
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.assignments()[0].start, 2.0);
  EXPECT_DOUBLE_EQ(s.assignments()[0].duration, 5.0);
}

TEST(SmallJobs, SkipsFullGroupsWholesale) {
  Schedule s;
  const std::vector<ProcGroup> groups = {
      {3, 11.5, 0.0, false},  // free 0.5: useless for t1 = 1
      {1, 0.0, 0.0, false},
  };
  insert_small_jobs(s, groups, 12.0, {{0, 1.0}, {1, 1.0}});
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.assignments()[0].start, 0.0);
  EXPECT_DOUBLE_EQ(s.assignments()[1].start, 1.0);
}

TEST(SmallJobs, ThrowsWhenNothingFits) {
  Schedule s;
  const std::vector<ProcGroup> groups = {{2, 11.0, 0.5, false}};
  EXPECT_THROW(insert_small_jobs(s, groups, 12.0, {{0, 3.0}}), internal_error);
}

TEST(SmallJobs, EmptySmallSetIsNoop) {
  Schedule s;
  insert_small_jobs(s, {}, 12.0, {});
  EXPECT_TRUE(s.empty());
}

TEST(SmallJobs, LemmaNineCapacityArgument) {
  // Work-bound scenario: m = 4 processors, horizon 3/2 d with d = 8;
  // shelf load leaves total free time >= total small work -> must fit.
  Schedule s;
  const std::vector<ProcGroup> groups = {
      {1, 8.0, 0.0, false}, {1, 6.0, 4.0, false}, {2, 0.0, 0.0, false}};
  // Free: 4 + 2 + 12 + 12 = 30. Small jobs: 12 jobs of 2.0 (t1 <= d/2 = 4).
  std::vector<SmallJobRef> smalls;
  for (std::size_t i = 0; i < 12; ++i) smalls.push_back({i, 2.0});
  insert_small_jobs(s, groups, 12.0, smalls);
  EXPECT_EQ(s.size(), 12u);
  // All placements within the horizon.
  for (const auto& a : s.assignments()) {
    EXPECT_GE(a.start, 0.0);
    EXPECT_LE(a.start + a.duration, 12.0 + 1e-9);
  }
}

}  // namespace
}  // namespace moldable::sched
