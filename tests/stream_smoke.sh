#!/bin/sh
# Serve-mode determinism smokes (the `stream_smoke`, `stream_soak`,
# `race_soak`, and `storm` ctest cases): pipe a stream through
# `batch_service --serve --verify` on 1 and 4 worker threads and assert
# both runs print the same rolling digest — and the same memo
# hit/miss/eviction counts. Each run also self-checks in-process (--verify
# re-serves the buffered stream on 1 thread), so a mismatch fails twice
# over. The soak/race/storm streams come from traffic_gen — inhomogeneous-
# Poisson arrivals over a rate curve, a weighted SLA class mix, Pareto-
# sized instances — so the determinism contract is certified on storm-
# shaped traffic, not a hand-rolled fixture loop.
#
#   smoke  — replays the small checked-in fixture with an unbounded memo
#            store (the original PR 3 smoke).
#   soak   — a 2000-arrival diurnal stream (mostly content-distinct
#            records, a duplicate every 11th arrival, an interactive
#            deadline class) served in the bounded endless-serve
#            configuration: --memo-capacity 64 --window-history 8
#            --deadline. The distinct records overflow the capacity, so
#            LRU eviction runs ~1800 times and its determinism is what the
#            digest/memo-count comparison certifies.
#   race_soak — a diurnal storm of mostly single-job instances on few
#            machines — where `exact` completes at the estimator's
#            certified lower bound and the racing early-cancel rule
#            provably fires — served through --race --portfolio
#            exact,fptas,mrt --memo-capacity 64 --verify. Asserts that
#            the rolling digest, the memo counts, AND the cancelled-
#            attempt count are identical at 1 vs 4 threads — and that the
#            digest also matches a sequential (non---race) serve, the
#            cross-mode half of the racing determinism contract. Runs
#            under the TSan CI leg so the cancellation protocol executes
#            under the race detector.
#   shed_soak — the control-loop gate: a 3000-arrival flash-crowd storm
#            served over capacity under --shed --adapt (racing portfolio,
#            interactive deadline 8 — calibrated so the certified-lower-
#            bound distribution straddles it: ~40% of the arrivals shed,
#            the rest serve, a few down-shift). Asserts that the rolling
#            digest, the `policy:` shed/down-shift counters, AND the
#            learned `priors:` table state are bitwise identical at 1 vs 4
#            threads — then records a live 4-thread session and replays it
#            on 1 thread, certifying the shed set is re-derived bit-exact
#            from the record file. A second leg runs the same storm with a
#            memory axis (--memcap 1 on 4 machines, footprints log-uniform
#            up to 16) over the socket path: arrivals with mem > 4 are
#            provably unschedulable (kmin > m, certified lower bound +inf)
#            and MUST shed with a certificate-backed REJECT whose total
#            lands in the extended SUMMARY frame — traffic_gen --connect
#            exits nonzero unless the SUMMARY shed counter matches the
#            REJECT frames it saw — and the recorded memory-constrained
#            session must replay bit-exact on 1 thread. Runs under both
#            sanitizer CI legs.
#   storm  — the full acceptance pipeline: a >=10000-arrival flash-crowd
#            storm recorded while served live at --threads 4 --race under
#            the production configuration (racing portfolio, LRU memo,
#            interactive deadline), then replayed from the record file at
#            --threads 1 — batch_service --replay asserts the rolling
#            digest and every deterministic counter (memo, cancelled,
#            deadline misses) are bit-identical to the live session.
#   listen_soak — the storm acceptance gate over the network path: four
#            concurrent `traffic_gen --connect` clients (2600 arrivals
#            each — >=10000 total) fire flash-crowd storms at one
#            `batch_service --listen` server running the production
#            configuration with --record. Every client must get exactly
#            its own results back (traffic_gen exits nonzero otherwise),
#            the server must complete all 4 sessions with 0 rejections and
#            0 malformed records — and the recorded merged session must
#            replay bit-exact on --threads 1, certifying that the socket
#            merge layer adds no new determinism obligations. The server
#            binds port 0 and publishes the kernel-chosen port through
#            --port-file, so concurrent `ctest -j` runs cannot collide.
#   cli    — the numeric-parsing regression guard: every malformed numeric
#            flag value (and a NaN/inf/negative --deadline budget) must
#            exit 2 with a diagnostic naming the offending flag — never an
#            uncaught std::invalid_argument abort — on both batch_service
#            and traffic_gen, while the well-formed spellings still parse.
set -eu

bin=$1
fixture=$2
mode=${3:-smoke}
traffic_gen=${4:-}

need_traffic_gen() {
    if [ -z "$traffic_gen" ]; then
        echo "stream_smoke.sh: mode '$mode' needs the traffic_gen binary as arg 4" >&2
        exit 2
    fi
}

case $mode in
smoke)
    stream=$fixture
    run() {
        "$bin" --serve --verify --memo --window 3 --max-inflight 2 \
               --threads "$1" < "$stream"
    }
    ;;
soak)
    need_traffic_gen
    stream=${TMPDIR:-/tmp}/stream_soak_$$.txt
    trap 'rm -f "$stream"' EXIT
    # 2000 arrivals, almost all content-distinct (per-arrival derived
    # generator seeds) — far more keys than the capacity-64 memo store
    # holds; every 11th arrival repeats a fixed duplicate so the hit path
    # stays exercised too.
    "$traffic_gen" --curve diurnal --seed 11 --horizon 80 --max-arrivals 2000 \
                   --dup-every 11 --jobs-cap 16 --machines 24 > "$stream"
    run() {
        "$bin" --serve --verify --memo --memo-capacity 64 --window-history 8 \
               --deadline interactive=0.5 --window 16 --max-inflight 4 \
               --threads "$1" < "$stream"
    }
    ;;
race_soak)
    need_traffic_gen
    stream=${TMPDIR:-/tmp}/stream_race_soak_$$.txt
    trap 'rm -f "$stream"' EXIT
    # Pareto(1.5) from jobs-min 1 makes ~2/3 of the arrivals single-job
    # instances on 4 machines — the deciders where `exact` completes at the
    # certified lower bound and early-cancels the fptas/mrt lanes.
    "$traffic_gen" --curve diurnal --seed 11 --horizon 40 --dup-every 11 \
                   --jobs-min 1 --jobs-cap 8 --machines 4 > "$stream"
    # exact first so its certified-optimal completions early-cancel the
    # later lanes; where it can't win the race degenerates gracefully.
    run() {
        "$bin" --serve --verify --memo --memo-capacity 64 --window-history 8 \
               --race --portfolio exact,fptas,mrt --window 16 --max-inflight 4 \
               --threads "$1" < "$stream"
    }
    run_sequential() {
        "$bin" --serve --memo --memo-capacity 64 --window-history 8 \
               --portfolio exact,fptas,mrt --window 16 --max-inflight 4 \
               --threads 4 < "$stream"
    }
    ;;
shed_soak)
    need_traffic_gen
    tmp=${TMPDIR:-/tmp}
    stream=$tmp/shed_soak_$$.txt
    record=$tmp/shed_soak_$$.rec
    memrecord=$tmp/shed_soak_$$.memrec
    portfile=$tmp/shed_soak_$$.port
    serverlog=$tmp/shed_soak_$$.log
    server=
    # SIGKILL for the same reason as listen_soak: under --listen SIGTERM
    # means "drain", which on a failure path would wait forever.
    trap 'if [ -n "${server:-}" ]; then kill -9 "$server" 2>/dev/null || true; fi; rm -f "$stream" "$record" "$memrecord" "$portfile" "$serverlog"' EXIT
    # Jobs 1-6 on 4 machines put the certified lower bounds on both sides
    # of deadline 8 — the storm MUST shed some arrivals and serve others,
    # or the mode certifies nothing (asserted below).
    "$traffic_gen" --curve flash --seed 7 --horizon 40 --max-arrivals 3000 \
                   --dup-every 11 --jobs-min 1 --jobs-cap 6 --machines 4 > "$stream"
    run() {
        "$bin" --serve --verify --race --portfolio exact,fptas,mrt \
               --shed --adapt --deadline interactive=8 \
               --memo --memo-capacity 64 --window 16 --max-inflight 4 \
               --threads "$1" < "$stream"
    }
    ;;
storm)
    need_traffic_gen
    tmp=${TMPDIR:-/tmp}
    stream=$tmp/storm_$$.txt
    record=$tmp/storm_$$.rec
    trap 'rm -f "$stream" "$record"' EXIT
    # The flash-crowd defaults over horizon 120 yield ~13000 arrivals for
    # this seed (deterministic — the stream is a pure function of the
    # flags); machines 4 keeps `exact` cheap enough for the sanitizer legs
    # while still letting it win (and early-cancel) on the 1-job deciders.
    "$traffic_gen" --curve flash --seed 7 --horizon 120 --dup-every 11 \
                   --jobs-min 1 --jobs-cap 6 --machines 4 > "$stream"
    arrivals=$(grep -c '^moldable-instance' "$stream")
    if [ "$arrivals" -lt 10000 ]; then
        echo "stream_smoke (storm): expected >=10000 arrivals, got $arrivals" >&2
        exit 1
    fi

    live=$("$bin" --serve --threads 4 --race --portfolio exact,fptas,mrt \
           --memo --memo-capacity 64 --deadline interactive=0.5 \
           --window 16 --max-inflight 4 --record "$record" < "$stream")
    dlive=$(printf '%s\n' "$live" | grep '^rolling digest:' || true)
    mlive=$(printf '%s\n' "$live" | grep '^memo:' || true)
    clive=$(printf '%s\n' "$live" | grep '^race:' || true)
    if [ -z "$dlive" ] || [ -z "$mlive" ] || [ -z "$clive" ]; then
        echo "stream_smoke (storm): live serve output missing digest/memo/race lines" >&2
        exit 1
    fi
    case $mlive in
    *" 0 eviction(s)"* | "memo: 0 hit(s)"*)
        echo "stream_smoke (storm): expected LRU evictions and memo hits, got: $mlive" >&2
        exit 1
        ;;
    esac
    case $clive in
    "race: 0 "*)
        echo "stream_smoke (storm): expected cancelled attempts, got: $clive" >&2
        exit 1
        ;;
    esac

    # The acceptance gate: replay the recorded session on 1 thread;
    # batch_service --replay exits nonzero unless the rolling digest and
    # every deterministic counter match the recording bit for bit.
    if ! "$bin" --replay "$record" --threads 1; then
        echo "stream_smoke (storm): replay diverged from the recorded live serve" >&2
        exit 1
    fi
    echo "stream_smoke (storm) OK: $arrivals arrivals; $dlive; $mlive; $clive; replay matched on 1 thread"
    exit 0
    ;;
listen_soak)
    need_traffic_gen
    tmp=${TMPDIR:-/tmp}
    record=$tmp/listen_soak_$$.rec
    portfile=$tmp/listen_soak_$$.port
    serverlog=$tmp/listen_soak_$$.log
    server=
    # SIGKILL, not SIGTERM: under --listen the server treats SIGTERM as
    # "drain" (stop accepting, finish live sessions) — on a failure path
    # with hung clients that would wait forever. The trap must reap.
    trap 'if [ -n "${server:-}" ]; then kill -9 "$server" 2>/dev/null || true; fi; rm -f "$record" "$portfile" "$serverlog"' EXIT

    # --listen-sessions 4 makes the server drain and exit after the four
    # expected clients; port 0 + --port-file is the ctest -j-safe handshake.
    "$bin" --listen 127.0.0.1:0 --port-file "$portfile" --listen-sessions 4 \
           --threads 4 --race --portfolio exact,fptas,mrt \
           --memo --memo-capacity 64 --deadline interactive=0.5 \
           --window 16 --max-inflight 4 --record "$record" > "$serverlog" 2>&1 &
    server=$!

    i=0
    while [ ! -s "$portfile" ]; do
        if ! kill -0 "$server" 2>/dev/null; then
            echo "stream_smoke (listen_soak): server exited before publishing its port:" >&2
            cat "$serverlog" >&2
            exit 1
        fi
        i=$((i + 1))
        if [ "$i" -gt 300 ]; then
            echo "stream_smoke (listen_soak): server never published its port" >&2
            exit 1
        fi
        sleep 0.1
    done
    port=$(cat "$portfile")

    # Four concurrent storm clients, distinct seeds. The flash curve yields
    # far more than 2600 arrivals over this horizon, so --max-arrivals pins
    # each client to exactly 2600 records — 10400 total, deterministically.
    # traffic_gen --connect exits nonzero unless it is admitted and receives
    # exactly one result per arrival sent.
    pids=
    for seed in 7 8 9 10; do
        "$traffic_gen" --curve flash --seed "$seed" --horizon 120 \
                       --max-arrivals 2600 --dup-every 11 \
                       --jobs-min 1 --jobs-cap 6 --machines 4 \
                       --connect "127.0.0.1:$port" &
        pids="$pids $!"
    done
    clients_ok=1
    for pid in $pids; do
        wait "$pid" || clients_ok=0
    done
    if [ "$clients_ok" -ne 1 ]; then
        echo "stream_smoke (listen_soak): a storm client failed its round trip" >&2
        cat "$serverlog" >&2
        exit 1
    fi
    if ! wait "$server"; then
        echo "stream_smoke (listen_soak): server exited nonzero:" >&2
        cat "$serverlog" >&2
        exit 1
    fi
    server=

    if ! grep -q '^sessions: 4 completed, 0 rejected' "$serverlog"; then
        echo "stream_smoke (listen_soak): expected 4 completed / 0 rejected sessions:" >&2
        grep '^sessions:' "$serverlog" >&2 || cat "$serverlog" >&2
        exit 1
    fi
    if ! grep -q '^stream: .* 10400 instance(s) (10400 solved, 0 failed, 0 malformed)' "$serverlog"; then
        echo "stream_smoke (listen_soak): expected 10400 clean instances:" >&2
        grep '^stream:' "$serverlog" >&2 || cat "$serverlog" >&2
        exit 1
    fi

    # The acceptance gate: the merged 4-client session, whose interleaving
    # real socket timing decided, must re-serve serially from the record
    # file to the same rolling digest and every deterministic counter.
    if ! "$bin" --replay "$record" --threads 1; then
        echo "stream_smoke (listen_soak): replay diverged from the recorded live serve" >&2
        exit 1
    fi
    dlive=$(grep '^rolling digest:' "$serverlog" || true)
    echo "stream_smoke (listen_soak) OK: 4 sessions x 2600 arrivals; $dlive; replay matched on 1 thread"
    exit 0
    ;;
cli)
    need_traffic_gen
    # Regression guard for the numeric CLI hardening: a malformed value must
    # exit 2 with a diagnostic that names the flag, not abort on an uncaught
    # std::invalid_argument from stoull/stod.
    expect_cli_error() {
        tool=$1
        needle=$2
        shift 2
        set +e
        err=$("$tool" "$@" 2>&1 >/dev/null)
        status=$?
        set -e
        if [ "$status" -ne 2 ]; then
            echo "stream_smoke (cli): '$*' expected exit 2, got $status" >&2
            printf '%s\n' "$err" >&2
            exit 1
        fi
        case $err in
        *"$needle"*) ;;
        *)
            echo "stream_smoke (cli): '$*' diagnostic does not name the flag (wanted '$needle'):" >&2
            printf '%s\n' "$err" >&2
            exit 1
            ;;
        esac
    }

    expect_cli_error "$bin" "--instances needs a non-negative integer" --instances banana
    expect_cli_error "$bin" "--jobs needs a non-negative integer" --jobs 4x
    expect_cli_error "$bin" "--machines needs a non-negative integer" --machines ''
    expect_cli_error "$bin" "--seed needs a non-negative integer" --seed -5
    expect_cli_error "$bin" "--threads needs a non-negative integer" --threads 1.5
    expect_cli_error "$bin" "--window needs a non-negative integer" --window 16x
    expect_cli_error "$bin" "--memo-capacity needs a non-negative integer" --memo-capacity 64k
    expect_cli_error "$bin" "--eps needs a number" --eps nope
    # --deadline budgets additionally reject NaN/inf/negative seconds: a
    # non-finite or negative budget is not a deadline, it is a parse bug.
    expect_cli_error "$bin" "--deadline SECONDS must be finite and non-negative" \
        --serve --shed --deadline interactive=nan
    expect_cli_error "$bin" "--deadline SECONDS must be finite and non-negative" \
        --serve --shed --deadline interactive=inf
    expect_cli_error "$bin" "--deadline SECONDS must be finite and non-negative" \
        --serve --shed --deadline interactive=-1
    expect_cli_error "$bin" "--deadline needs a number" --serve --deadline interactive=soon

    expect_cli_error "$traffic_gen" "--max-arrivals needs a non-negative integer" --max-arrivals many
    expect_cli_error "$traffic_gen" "--seed needs a non-negative integer" --seed 0x7
    expect_cli_error "$traffic_gen" "--horizon needs a number" --horizon 'twelve'
    expect_cli_error "$traffic_gen" "--memcap needs a number" --memcap wat
    expect_cli_error "$traffic_gen" "--mem-min needs a number" --mem-min ''
    expect_cli_error "$traffic_gen" "--mem-max needs a number" --mem-max 4GiB

    # The well-formed spellings still parse (the engine separately requires
    # deadlines > 0, so 0.5 is the smallest shape tested here), and the
    # memory flags accept the documented range.
    "$bin" --serve --shed --deadline interactive=0.5 --deadline batch=8.5 < /dev/null > /dev/null
    "$traffic_gen" --curve flash --seed 3 --horizon 5 --max-arrivals 5 \
                   --machines 4 --memcap 1 --mem-min 0.25 --mem-max 16 > /dev/null
    echo "stream_smoke (cli) OK: malformed numerics exit 2 with named diagnostics"
    exit 0
    ;;
*)
    echo "stream_smoke.sh: unknown mode '$mode' (want smoke, soak, race_soak, shed_soak, storm, listen_soak, or cli)" >&2
    exit 2
    ;;
esac

out1=$(run 1)
out4=$(run 4)
# `|| true`: under set -e a no-match grep would kill the script before the
# missing-line diagnostics below could run.
d1=$(printf '%s\n' "$out1" | grep '^rolling digest:' || true)
d4=$(printf '%s\n' "$out4" | grep '^rolling digest:' || true)
m1=$(printf '%s\n' "$out1" | grep '^memo:' || true)
m4=$(printf '%s\n' "$out4" | grep '^memo:' || true)

if [ -z "$d1" ] || [ -z "$d4" ]; then
    echo "stream_smoke ($mode): missing rolling digest line" >&2
    exit 1
fi
if [ "$d1" != "$d4" ]; then
    echo "stream_smoke ($mode): rolling digest differs across thread counts:" >&2
    echo "  threads=1: $d1" >&2
    echo "  threads=4: $d4" >&2
    exit 1
fi
if [ -z "$m1" ] || [ "$m1" != "$m4" ]; then
    echo "stream_smoke ($mode): memo counts differ (or are missing) across thread counts:" >&2
    echo "  threads=1: $m1" >&2
    echo "  threads=4: $m4" >&2
    exit 1
fi
if [ "$mode" = soak ]; then
    # The endless-serve config must actually have evicted (distinct records
    # overflow capacity 64) — a soak that never evicts certifies nothing.
    case $m1 in
    *" 0 eviction(s)"* | "memo: 0 hit(s)"*)
        echo "stream_smoke (soak): expected LRU evictions and memo hits, got: $m1" >&2
        exit 1
        ;;
    esac
fi
if [ "$mode" = race_soak ]; then
    # `|| true`: under set -e a no-match grep would kill the script before
    # the diagnostics below could name what went missing.
    c1=$(printf '%s\n' "$out1" | grep '^race:' || true)
    c4=$(printf '%s\n' "$out4" | grep '^race:' || true)
    if [ -z "$c1" ] || [ "$c1" != "$c4" ]; then
        echo "stream_smoke (race_soak): cancelled-attempt counts differ (or are missing) across thread counts:" >&2
        echo "  threads=1: $c1" >&2
        echo "  threads=4: $c4" >&2
        exit 1
    fi
    case $c1 in
    "race: 0 "*)
        # A race in which early-cancel never fires certifies nothing about
        # the cancellation protocol.
        echo "stream_smoke (race_soak): expected cancelled attempts, got: $c1" >&2
        exit 1
        ;;
    esac
    # Cross-mode half of the determinism contract: the raced digest must be
    # bitwise identical to a sequential (non---race) serve of the stream.
    dseq=$(run_sequential | grep '^rolling digest:' || true)
    if [ -z "$dseq" ] || [ "$dseq" != "$d1" ]; then
        echo "stream_smoke (race_soak): raced digest differs from sequential portfolio mode:" >&2
        echo "  race:       $d1" >&2
        echo "  sequential: $dseq" >&2
        exit 1
    fi
    echo "stream_smoke (race_soak) OK: $c1 (threads 1 == threads 4; race == sequential)"
fi
if [ "$mode" = shed_soak ]; then
    # `|| true`: under set -e a no-match grep would kill the script before
    # the diagnostics below could name what went missing.
    p1=$(printf '%s\n' "$out1" | grep '^policy:' || true)
    p4=$(printf '%s\n' "$out4" | grep '^policy:' || true)
    if [ -z "$p1" ] || [ "$p1" != "$p4" ]; then
        echo "stream_smoke (shed_soak): policy counters differ (or are missing) across thread counts:" >&2
        echo "  threads=1: $p1" >&2
        echo "  threads=4: $p4" >&2
        exit 1
    fi
    case $p1 in
    "policy: 0 shed"*)
        # A shed soak in which nothing sheds certifies nothing about the
        # admission certificate.
        echo "stream_smoke (shed_soak): expected shed arrivals, got: $p1" >&2
        exit 1
        ;;
    *" 0 down-shifted")
        echo "stream_smoke (shed_soak): expected down-shifted instances, got: $p1" >&2
        exit 1
        ;;
    esac
    # The learned prior table is digest-grade state: every priors: line
    # (class ranking + scores) must match bitwise across thread counts.
    pr1=$(printf '%s\n' "$out1" | grep '^priors:' || true)
    pr4=$(printf '%s\n' "$out4" | grep '^priors:' || true)
    if [ -z "$pr1" ] || [ "$pr1" != "$pr4" ]; then
        echo "stream_smoke (shed_soak): prior tables differ (or are missing) across thread counts:" >&2
        echo "  threads=1: $pr1" >&2
        echo "  threads=4: $pr4" >&2
        exit 1
    fi

    # The record/replay half of the gate: a live 4-thread shed session must
    # replay bit-exact on 1 thread — batch_service --replay asserts the
    # digest, the shed/down-shift counters, and everything else recorded.
    "$bin" --serve --threads 4 --race --portfolio exact,fptas,mrt \
           --shed --adapt --deadline interactive=8 \
           --memo --memo-capacity 64 --window 16 --max-inflight 4 \
           --record "$record" < "$stream" > /dev/null
    replay_out=$("$bin" --replay "$record" --threads 1)
    case $replay_out in
    *"policy re-derived"*) ;;
    *)
        echo "stream_smoke (shed_soak): replay did not re-derive the shed set:" >&2
        printf '%s\n' "$replay_out" >&2
        exit 1
        ;;
    esac
    # The memory-axis leg, over the socket path so the extended SUMMARY
    # frame is on the wire: capacity 1 per machine x 4 machines against
    # footprints log-uniform on [0.25, 16] means arrivals with mem > 4 are
    # provably unschedulable — ceil(mem/C) machines needed, only 4 exist,
    # so the certified lower bound is +inf and --shed MUST refuse them with
    # a certificate-backed REJECT. The feasible rest serve through the
    # memory-aware greedy (--algorithm mem-greedy; the default portfolio
    # variants are memory-blind and would fail closed). traffic_gen
    # --connect exits nonzero unless the SUMMARY's shed counter equals the
    # per-record REJECT frames it saw and every arrival was answered.
    "$bin" --listen 127.0.0.1:0 --port-file "$portfile" --listen-sessions 1 \
           --threads 4 --algorithm mem-greedy --shed --deadline interactive=8 \
           --memo --memo-capacity 64 --window 16 --max-inflight 4 \
           --record "$memrecord" > "$serverlog" 2>&1 &
    server=$!
    i=0
    while [ ! -s "$portfile" ]; do
        if ! kill -0 "$server" 2>/dev/null; then
            echo "stream_smoke (shed_soak): memory-leg server exited before publishing its port:" >&2
            cat "$serverlog" >&2
            exit 1
        fi
        i=$((i + 1))
        if [ "$i" -gt 300 ]; then
            echo "stream_smoke (shed_soak): memory-leg server never published its port" >&2
            exit 1
        fi
        sleep 0.1
    done
    port=$(cat "$portfile")
    if ! "$traffic_gen" --curve flash --seed 7 --horizon 40 --max-arrivals 600 \
                        --jobs-min 1 --jobs-cap 6 --machines 4 \
                        --classes interactive=1 \
                        --memcap 1 --mem-min 0.25 --mem-max 16 \
                        --connect "127.0.0.1:$port"; then
        echo "stream_smoke (shed_soak): memory-tight client failed its round trip:" >&2
        cat "$serverlog" >&2
        exit 1
    fi
    if ! wait "$server"; then
        echo "stream_smoke (shed_soak): memory-leg server exited nonzero:" >&2
        cat "$serverlog" >&2
        exit 1
    fi
    server=
    # The session totals must show certificate-backed sheds — a memory
    # storm in which nothing sheds certifies nothing about the axis.
    if ! grep -q 'record(s) shed' "$serverlog"; then
        echo "stream_smoke (shed_soak): memory-tight storm shed nothing:" >&2
        grep '^sessions:' "$serverlog" >&2 || cat "$serverlog" >&2
        exit 1
    fi
    mshed=$(grep '^sessions:' "$serverlog" || true)
    # And the recorded memory-constrained session replays bit-exact on 1
    # thread: mem/memcap round-trip through the record file and the shed
    # set (including the memory-infeasible refusals) is re-derived.
    if ! "$bin" --replay "$memrecord" --threads 1 > /dev/null; then
        echo "stream_smoke (shed_soak): memory-leg replay diverged from the recorded serve" >&2
        exit 1
    fi
    echo "stream_smoke (shed_soak) OK: $p1 (threads 1 == threads 4; recorded shed session replayed bit-exact; memory leg: $mshed)"
fi
echo "stream_smoke ($mode) OK: $d1, $m1 (threads 1 == threads 4)"
