#!/bin/sh
# Serve-mode determinism smokes (registered as the `stream_smoke` and
# `stream_soak` ctest cases): pipe a stream through `batch_service --serve
# --verify` on 1 and 4 worker threads and assert both runs print the same
# rolling digest — and the same memo hit/miss/eviction counts. Each run also
# self-checks in-process (--verify re-serves the buffered stream on 1
# thread), so a mismatch fails twice over.
#
#   smoke  — replays the small checked-in fixture with an unbounded memo
#            store (the original PR 3 smoke).
#   soak   — generates a ~2000-instance stream (mostly distinct records,
#            interleaved arrivals, an interactive deadline class) and serves
#            it in the bounded endless-serve configuration:
#            --memo-capacity 64 --window-history 8 --deadline. The distinct
#            records overflow the capacity, so LRU eviction runs thousands
#            of times and its determinism is what the digest/memo-count
#            comparison certifies.
#   race_soak — serves the soak stream (extended with single-job records
#            where `exact` completes at the certified lower bound and
#            early-cancels its peers) through the racing portfolio:
#            --race --portfolio exact,fptas,mrt --memo-capacity 64
#            --verify. Asserts that the rolling digest, the memo counts,
#            AND the cancelled-attempt count are identical at 1 vs 4
#            threads — and that the digest also matches a sequential
#            (non---race) serve, the cross-mode half of the racing
#            determinism contract. Runs under the TSan CI leg so the
#            cancellation protocol executes under the race detector.
set -eu

bin=$1
fixture=$2
mode=${3:-smoke}

generate_soak_stream() {
    # ~2000 small records in plain io format. The parameter mix (machine
    # count mod 97, job sizes mod 5/7, fractions mod 4/6) has a long period,
    # so almost every record is content-distinct — far more keys than the
    # capacity-64 memo store holds. Every 11th record repeats a fixed
    # duplicate so the hit path stays exercised too.
    # $1 = 1: interleave single-job records on few machines — the instances
    # where `exact` completes at the estimator's certified lower bound and
    # the racing early-cancel rule provably fires on the later lanes.
    awk -v with_deciders="${1:-0}" 'BEGIN {
        for (i = 0; i < 2000; ++i) {
            printf "moldable-instance v1\n";
            if (with_deciders && i % 13 == 5) {
                printf "arrival %d\n", i % 50;
                printf "machines %d\njob amdahl %d 0.%d\n\n",
                       5 + i % 4, 2 + i % 6, 2 + i % 7;
                continue;
            }
            if (i % 11 == 0) {
                # Byte-identical repeat: always a memo hit once cached (its
                # touches keep it off the LRU tail between repeats).
                printf "arrival 7\nclass interactive\n";
                printf "machines 32\njob amdahl 6 0.4\njob powerlaw 4 0.5\n\n";
                continue;
            }
            printf "arrival %d\n", i % 50;
            if (i % 3 == 0) printf "class interactive\n";
            printf "machines %d\n", 16 + i % 97;
            printf "job amdahl %d 0.%d\n", 3 + i % 5, 2 + i % 6;
            printf "job powerlaw %d 0.%d\n", 2 + i % 7, 3 + i % 4;
            printf "\n";
        }
    }'
}

case $mode in
smoke)
    stream=$fixture
    run() {
        "$bin" --serve --verify --memo --window 3 --max-inflight 2 \
               --threads "$1" < "$stream"
    }
    ;;
soak)
    stream=${TMPDIR:-/tmp}/stream_soak_$$.txt
    trap 'rm -f "$stream"' EXIT
    generate_soak_stream > "$stream"
    run() {
        "$bin" --serve --verify --memo --memo-capacity 64 --window-history 8 \
               --deadline interactive=0.5 --window 16 --max-inflight 4 \
               --threads "$1" < "$stream"
    }
    ;;
race_soak)
    stream=${TMPDIR:-/tmp}/stream_race_soak_$$.txt
    trap 'rm -f "$stream"' EXIT
    generate_soak_stream 1 > "$stream"
    # exact first so its certified-optimal completions on the single-job
    # records early-cancel the fptas/mrt lanes; on everything else exact
    # fails fast over its caps and the race degenerates gracefully.
    run() {
        "$bin" --serve --verify --memo --memo-capacity 64 --window-history 8 \
               --race --portfolio exact,fptas,mrt --window 16 --max-inflight 4 \
               --threads "$1" < "$stream"
    }
    run_sequential() {
        "$bin" --serve --memo --memo-capacity 64 --window-history 8 \
               --portfolio exact,fptas,mrt --window 16 --max-inflight 4 \
               --threads 4 < "$stream"
    }
    ;;
*)
    echo "stream_smoke.sh: unknown mode '$mode' (want smoke, soak, or race_soak)" >&2
    exit 2
    ;;
esac

out1=$(run 1)
out4=$(run 4)
# `|| true`: under set -e a no-match grep would kill the script before the
# missing-line diagnostics below could run.
d1=$(printf '%s\n' "$out1" | grep '^rolling digest:' || true)
d4=$(printf '%s\n' "$out4" | grep '^rolling digest:' || true)
m1=$(printf '%s\n' "$out1" | grep '^memo:' || true)
m4=$(printf '%s\n' "$out4" | grep '^memo:' || true)

if [ -z "$d1" ] || [ -z "$d4" ]; then
    echo "stream_smoke ($mode): missing rolling digest line" >&2
    exit 1
fi
if [ "$d1" != "$d4" ]; then
    echo "stream_smoke ($mode): rolling digest differs across thread counts:" >&2
    echo "  threads=1: $d1" >&2
    echo "  threads=4: $d4" >&2
    exit 1
fi
if [ -z "$m1" ] || [ "$m1" != "$m4" ]; then
    echo "stream_smoke ($mode): memo counts differ (or are missing) across thread counts:" >&2
    echo "  threads=1: $m1" >&2
    echo "  threads=4: $m4" >&2
    exit 1
fi
if [ "$mode" = soak ]; then
    # The endless-serve config must actually have evicted (distinct records
    # overflow capacity 64) — a soak that never evicts certifies nothing.
    case $m1 in
    *" 0 eviction(s)"* | "memo: 0 hit(s)"*)
        echo "stream_smoke (soak): expected LRU evictions and memo hits, got: $m1" >&2
        exit 1
        ;;
    esac
fi
if [ "$mode" = race_soak ]; then
    # `|| true`: under set -e a no-match grep would kill the script before
    # the diagnostics below could name what went missing.
    c1=$(printf '%s\n' "$out1" | grep '^race:' || true)
    c4=$(printf '%s\n' "$out4" | grep '^race:' || true)
    if [ -z "$c1" ] || [ "$c1" != "$c4" ]; then
        echo "stream_smoke (race_soak): cancelled-attempt counts differ (or are missing) across thread counts:" >&2
        echo "  threads=1: $c1" >&2
        echo "  threads=4: $c4" >&2
        exit 1
    fi
    case $c1 in
    "race: 0 "*)
        # A race in which early-cancel never fires certifies nothing about
        # the cancellation protocol.
        echo "stream_smoke (race_soak): expected cancelled attempts, got: $c1" >&2
        exit 1
        ;;
    esac
    # Cross-mode half of the determinism contract: the raced digest must be
    # bitwise identical to a sequential (non---race) serve of the stream.
    dseq=$(run_sequential | grep '^rolling digest:' || true)
    if [ -z "$dseq" ] || [ "$dseq" != "$d1" ]; then
        echo "stream_smoke (race_soak): raced digest differs from sequential portfolio mode:" >&2
        echo "  race:       $d1" >&2
        echo "  sequential: $dseq" >&2
        exit 1
    fi
    echo "stream_smoke (race_soak) OK: $c1 (threads 1 == threads 4; race == sequential)"
fi
echo "stream_smoke ($mode) OK: $d1, $m1 (threads 1 == threads 4)"
