#!/bin/sh
# Serve-mode determinism smoke (registered as the `stream_smoke` ctest case):
# pipes the fixture stream through `batch_service --serve --verify` on 1 and
# 4 worker threads and asserts both runs print the same rolling digest. Each
# run also self-checks in-process (--verify re-serves the buffered stream on
# 1 thread), so a mismatch fails twice over. --memo is on to keep the
# duplicate-record reuse path inside the determinism contract.
set -eu

bin=$1
fixture=$2

run() {
    "$bin" --serve --verify --memo --window 3 --max-inflight 2 \
           --threads "$1" < "$fixture"
}

d1=$(run 1 | grep '^rolling digest:')
d4=$(run 4 | grep '^rolling digest:')

if [ -z "$d1" ] || [ -z "$d4" ]; then
    echo "stream_smoke: missing rolling digest line" >&2
    exit 1
fi
if [ "$d1" != "$d4" ]; then
    echo "stream_smoke: rolling digest differs across thread counts:" >&2
    echo "  threads=1: $d1" >&2
    echo "  threads=4: $d4" >&2
    exit 1
fi
echo "stream_smoke OK: $d1 (threads 1 == threads 4)"
