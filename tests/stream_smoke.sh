#!/bin/sh
# Serve-mode determinism smokes (registered as the `stream_smoke` and
# `stream_soak` ctest cases): pipe a stream through `batch_service --serve
# --verify` on 1 and 4 worker threads and assert both runs print the same
# rolling digest — and the same memo hit/miss/eviction counts. Each run also
# self-checks in-process (--verify re-serves the buffered stream on 1
# thread), so a mismatch fails twice over.
#
#   smoke  — replays the small checked-in fixture with an unbounded memo
#            store (the original PR 3 smoke).
#   soak   — generates a ~2000-instance stream (mostly distinct records,
#            interleaved arrivals, an interactive deadline class) and serves
#            it in the bounded endless-serve configuration:
#            --memo-capacity 64 --window-history 8 --deadline. The distinct
#            records overflow the capacity, so LRU eviction runs thousands
#            of times and its determinism is what the digest/memo-count
#            comparison certifies.
set -eu

bin=$1
fixture=$2
mode=${3:-smoke}

generate_soak_stream() {
    # ~2000 small records in plain io format. The parameter mix (machine
    # count mod 97, job sizes mod 5/7, fractions mod 4/6) has a long period,
    # so almost every record is content-distinct — far more keys than the
    # capacity-64 memo store holds. Every 11th record repeats a fixed
    # duplicate so the hit path stays exercised too.
    awk 'BEGIN {
        for (i = 0; i < 2000; ++i) {
            printf "moldable-instance v1\n";
            if (i % 11 == 0) {
                # Byte-identical repeat: always a memo hit once cached (its
                # touches keep it off the LRU tail between repeats).
                printf "arrival 7\nclass interactive\n";
                printf "machines 32\njob amdahl 6 0.4\njob powerlaw 4 0.5\n\n";
                continue;
            }
            printf "arrival %d\n", i % 50;
            if (i % 3 == 0) printf "class interactive\n";
            printf "machines %d\n", 16 + i % 97;
            printf "job amdahl %d 0.%d\n", 3 + i % 5, 2 + i % 6;
            printf "job powerlaw %d 0.%d\n", 2 + i % 7, 3 + i % 4;
            printf "\n";
        }
    }'
}

case $mode in
smoke)
    stream=$fixture
    run() {
        "$bin" --serve --verify --memo --window 3 --max-inflight 2 \
               --threads "$1" < "$stream"
    }
    ;;
soak)
    stream=${TMPDIR:-/tmp}/stream_soak_$$.txt
    trap 'rm -f "$stream"' EXIT
    generate_soak_stream > "$stream"
    run() {
        "$bin" --serve --verify --memo --memo-capacity 64 --window-history 8 \
               --deadline interactive=0.5 --window 16 --max-inflight 4 \
               --threads "$1" < "$stream"
    }
    ;;
*)
    echo "stream_smoke.sh: unknown mode '$mode' (want smoke or soak)" >&2
    exit 2
    ;;
esac

out1=$(run 1)
out4=$(run 4)
d1=$(printf '%s\n' "$out1" | grep '^rolling digest:')
d4=$(printf '%s\n' "$out4" | grep '^rolling digest:')
m1=$(printf '%s\n' "$out1" | grep '^memo:')
m4=$(printf '%s\n' "$out4" | grep '^memo:')

if [ -z "$d1" ] || [ -z "$d4" ]; then
    echo "stream_smoke ($mode): missing rolling digest line" >&2
    exit 1
fi
if [ "$d1" != "$d4" ]; then
    echo "stream_smoke ($mode): rolling digest differs across thread counts:" >&2
    echo "  threads=1: $d1" >&2
    echo "  threads=4: $d4" >&2
    exit 1
fi
if [ -z "$m1" ] || [ "$m1" != "$m4" ]; then
    echo "stream_smoke ($mode): memo counts differ (or are missing) across thread counts:" >&2
    echo "  threads=1: $m1" >&2
    echo "  threads=4: $m4" >&2
    exit 1
fi
if [ "$mode" = soak ]; then
    # The endless-serve config must actually have evicted (distinct records
    # overflow capacity 64) — a soak that never evicts certifies nothing.
    case $m1 in
    *" 0 eviction(s)"* | "memo: 0 hit(s)"*)
        echo "stream_smoke (soak): expected LRU evictions and memo hits, got: $m1" >&2
        exit 1
        ;;
    esac
fi
echo "stream_smoke ($mode) OK: $d1, $m1 (threads 1 == threads 4)"
