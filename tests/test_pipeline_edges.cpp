// Edge-case tests for the shared dual back-end (core/pipeline): the m = 1
// degenerate machine, single-job instances, all-small batches, exact
// threshold/boundary deadlines, and work-bound overflow rejections.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/core/pipeline.hpp"
#include "src/jobs/generators.hpp"
#include "src/sched/validator.hpp"

namespace moldable::core {
namespace {

using jobs::Family;
using jobs::Instance;
using jobs::make_instance;

// n constant-time jobs (t(k) = t for every k) bound to m machines.
Instance constant_jobs(std::initializer_list<double> times, procs_t m) {
  std::vector<jobs::Job> jv;
  for (double t : times) jv.emplace_back(std::make_shared<jobs::AmdahlTime>(t, 0.0), m);
  return Instance(std::move(jv), m);
}

TEST(PipelineEdges, SingleMachineAllSmallStacksSequentially) {
  const Instance inst = constant_jobs({1, 1, 1, 1}, 1);
  const double d = 8;  // W_S = 4 <= m*d - 0 and every t1 = 1 <= d/2
  const BigSmallSplit split = split_small_big(inst, d);
  EXPECT_EQ(split.small.size(), 4u);
  EXPECT_TRUE(split.big.empty());
  EXPECT_DOUBLE_EQ(split.small_work, 4);

  const auto s = assemble_schedule(inst, d, {}, sched::TransformPolicy::kExactHeap, 0.2);
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(sched::validate(*s, inst).ok);
  EXPECT_EQ(s->size(), 4u);
  EXPECT_DOUBLE_EQ(s->makespan(), 4);  // sequential on the single machine
  EXPECT_EQ(s->peak_procs(), 1);
}

TEST(PipelineEdges, SingleMachineSingleBigJob) {
  const Instance inst = constant_jobs({5}, 1);
  const double d = 8;  // t1 = 5 > d/2: big and forced (t(m) = 5 > 4)
  const BigSmallSplit split = split_small_big(inst, d);
  EXPECT_EQ(split.big.size(), 1u);

  // The forced job must be passed in s1_jobs; with it the assembly succeeds.
  EXPECT_FALSE(
      assemble_schedule(inst, d, {}, sched::TransformPolicy::kExactHeap, 0.2).has_value());
  const auto s = assemble_schedule(inst, d, {0}, sched::TransformPolicy::kExactHeap, 0.2);
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(sched::validate(*s, inst).ok);
  EXPECT_DOUBLE_EQ(s->makespan(), 5);
}

TEST(PipelineEdges, SingleMachineRejectsOverfullShelfOne) {
  // Three forced jobs need three shelf-1 processors but m = 1.
  const Instance inst = constant_jobs({3, 3, 3}, 1);
  const double d = 4;
  EXPECT_FALSE(assemble_schedule(inst, d, {0, 1, 2}, sched::TransformPolicy::kExactHeap, 0.2)
                   .has_value());
}

TEST(PipelineEdges, SingleMachineRejectsSmallWorkOverflow) {
  // All jobs are small at d = 4 but their sequential work 5 * 1.9 exceeds
  // m * d = 4: the Lemma 6 work bound must reject.
  const Instance inst = constant_jobs({1.9, 1.9, 1.9, 1.9, 1.9}, 1);
  AssemblyStats stats;
  const auto s =
      assemble_schedule(inst, 4, {}, sched::TransformPolicy::kExactHeap, 0.2, &stats);
  EXPECT_FALSE(s.has_value());
  EXPECT_LT(stats.work_bound, 0);
}

TEST(PipelineEdges, SingleJobSmallVsBigAcrossDeadlines) {
  const Instance inst = constant_jobs({10}, 4);
  // d = 20: t1 = 10 = d/2, boundary-inclusive small.
  EXPECT_EQ(split_small_big(inst, 20).small.size(), 1u);
  const auto small_side =
      assemble_schedule(inst, 20, {}, sched::TransformPolicy::kExactHeap, 0.2);
  ASSERT_TRUE(small_side.has_value());
  EXPECT_TRUE(sched::validate(*small_side, inst).ok);
  EXPECT_DOUBLE_EQ(small_side->makespan(), 10);

  // d = 12: big and forced (t(m) = 10 > 6); shelf 1 alone schedules it.
  EXPECT_EQ(split_small_big(inst, 12).big.size(), 1u);
  const auto big_side =
      assemble_schedule(inst, 12, {0}, sched::TransformPolicy::kExactHeap, 0.2);
  ASSERT_TRUE(big_side.has_value());
  EXPECT_TRUE(sched::validate(*big_side, inst).ok);
  EXPECT_DOUBLE_EQ(big_side->makespan(), 10);
}

TEST(PipelineEdges, SplitThresholdIsBoundaryInclusive) {
  const Instance inst = constant_jobs({5}, 4);
  EXPECT_EQ(split_small_big(inst, 10).small.size(), 1u);  // t1 == d/2 exactly
  EXPECT_EQ(split_small_big(inst, 10 * (1 - 1e-6)).big.size(), 1u);
}

TEST(PipelineEdges, AllSmallGeneratedInstanceAssemblesEveryJob) {
  const Instance inst = make_instance(Family::kMixed, 40, 64, 17);
  double max_t1 = 0;
  for (const jobs::Job& j : inst.jobs()) max_t1 = std::max(max_t1, j.t1());
  const double d = 2 * max_t1;  // everything small, shelf sets empty
  const BigSmallSplit split = split_small_big(inst, d);
  EXPECT_TRUE(split.big.empty());
  EXPECT_EQ(split.small.size(), inst.size());

  AssemblyStats stats;
  const auto s =
      assemble_schedule(inst, d, {}, sched::TransformPolicy::kExactHeap, 0.2, &stats);
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(sched::validate(*s, inst).ok);
  EXPECT_EQ(s->size(), inst.size());
  EXPECT_LE(s->makespan(), 1.5 * d * (1 + 1e-9));
  EXPECT_EQ(stats.shelf1_procs, 0);
  EXPECT_EQ(stats.shelf2_procs, 0);
}

TEST(PipelineEdges, DeadlineExactlyAtInfeasibilityBoundary) {
  const Instance inst = make_instance(Family::kPowerLaw, 12, 32, 9);
  const double d_star = inst.min_time_bound();  // max_j t_j(m)
  // Exactly at the boundary the deadline is still feasible (<= with
  // tolerance); any relative shave beyond the tolerance flips it.
  EXPECT_FALSE(deadline_infeasible(inst, d_star));
  EXPECT_TRUE(deadline_infeasible(inst, d_star * (1 - 1e-6)));
  EXPECT_FALSE(deadline_infeasible(inst, d_star * (1 + 1e-6)));
}

TEST(PipelineEdges, EmptyInstanceAssemblesEmptySchedule) {
  const Instance inst(std::vector<jobs::Job>{}, 4);
  const BigSmallSplit split = split_small_big(inst, 1);
  EXPECT_TRUE(split.big.empty());
  EXPECT_TRUE(split.small.empty());
  EXPECT_FALSE(deadline_infeasible(inst, 0.0));
  const auto s = assemble_schedule(inst, 1, {}, sched::TransformPolicy::kExactHeap, 0.2);
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(s->empty());
  EXPECT_DOUBLE_EQ(s->makespan(), 0);
}

}  // namespace
}  // namespace moldable::core
