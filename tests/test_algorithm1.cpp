// Tests for Algorithm 1 (Section 4.2.5): the compressible-knapsack dual.
#include <gtest/gtest.h>

#include "src/core/compressible_sched.hpp"
#include "src/core/estimator.hpp"
#include "src/core/exact.hpp"
#include "src/core/mrt.hpp"
#include "src/jobs/generators.hpp"
#include "src/sched/validator.hpp"

namespace moldable::core {
namespace {

using jobs::Family;
using jobs::Instance;
using jobs::make_instance;

TEST(Algorithm1Dual, AcceptsAtTwiceOmegaAcrossFamilies) {
  for (Family fam : jobs::all_families()) {
    const procs_t m = fam == Family::kTable ? 128 : 1024;
    const Instance inst = make_instance(fam, 24, m, 3);
    const EstimatorResult est = estimate_makespan(inst);
    const double d = 2 * est.omega;
    const double eps = 0.3;
    const DualOutcome out = compressible_dual(inst, d, eps);
    ASSERT_TRUE(out.accepted) << jobs::family_name(fam);
    const auto v = sched::validate(out.schedule, inst);
    EXPECT_TRUE(v.ok) << jobs::family_name(fam) << ": "
                      << (v.errors.empty() ? "" : v.errors.front());
    EXPECT_LE(v.makespan, (1.5 + eps) * d * (1 + 1e-9)) << jobs::family_name(fam);
  }
}

TEST(Algorithm1Dual, RejectsHopelessDeadline) {
  const Instance inst = make_instance(Family::kPowerLaw, 12, 256, 5);
  EXPECT_FALSE(compressible_dual(inst, inst.min_time_bound() * 0.2, 0.25).accepted);
}

TEST(Algorithm1Dual, ValidatesEps) {
  const Instance inst = make_instance(Family::kAmdahl, 4, 64, 1);
  EXPECT_THROW(compressible_dual(inst, 10.0, 0.0), std::invalid_argument);
  EXPECT_THROW(compressible_dual(inst, 10.0, 1.5), std::invalid_argument);
}

TEST(Algorithm1, RatioAgainstExactOptimum) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Instance inst = make_instance(Family::kTable, 5, 6, seed + 60);
    const auto exact = solve_exact(inst);
    ASSERT_TRUE(exact.has_value());
    const double eps = 0.2;
    const CompressibleSchedResult r = compressible_schedule(inst, eps);
    ASSERT_TRUE(sched::validate(r.schedule, inst).ok);
    EXPECT_LE(r.schedule.makespan(), (1.5 + eps) * exact->makespan * (1 + 1e-9))
        << "seed=" << seed;
  }
}

TEST(Algorithm1, AgreesWithMrtWithinEps) {
  // Both are (3/2+eps)-approximations of the same optimum; their makespans
  // can differ by at most the combined slack.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Instance inst = make_instance(Family::kMixed, 40, 512, seed);
    const double eps = 0.25;
    const MrtResult a = mrt_schedule(inst, eps);
    const CompressibleSchedResult b = compressible_schedule(inst, eps);
    const double lo = std::max(a.lower_bound, b.lower_bound);
    EXPECT_LE(a.schedule.makespan(), (1.5 + eps) * 2 * lo * (1 + 1e-9));
    EXPECT_LE(b.schedule.makespan(), (1.5 + eps) * 2 * lo * (1 + 1e-9));
  }
}

TEST(Algorithm1, WideJobRegimeExercisesCompression) {
  // Many highly-parallel jobs on few-ish machines: gamma(d) is large, so
  // the compressible path (wide jobs >= 1/rho_c) is actually taken.
  const Instance inst = make_instance(Family::kPowerLaw, 16, 4096, 9);
  const double eps = 0.1;  // rho_c = eps/12 small => wide threshold low
  const CompressibleSchedResult r = compressible_schedule(inst, eps);
  ASSERT_TRUE(sched::validate(r.schedule, inst).ok);
  EXPECT_LE(r.schedule.makespan(), (1.5 + eps) * 2 * r.lower_bound * (1 + 1e-9));
}

TEST(Algorithm1, LargeEpsVersusSmallEps) {
  // Smaller eps cannot yield a worse certified ratio bound.
  const Instance inst = make_instance(Family::kAmdahl, 30, 256, 13);
  const auto loose = compressible_schedule(inst, 0.8);
  const auto tight = compressible_schedule(inst, 0.05);
  ASSERT_TRUE(sched::validate(loose.schedule, inst).ok);
  ASSERT_TRUE(sched::validate(tight.schedule, inst).ok);
  EXPECT_LE(tight.schedule.makespan(),
            loose.schedule.makespan() * (1.55 / 1.5) * (1 + 1e-6) + 1e-9);
}

TEST(Algorithm1, EmptyInstance) {
  EXPECT_TRUE(compressible_schedule(Instance({}, 8), 0.5).schedule.empty());
}

}  // namespace
}  // namespace moldable::core

namespace moldable::core {
namespace {

TEST(Algorithm1Dual, AcceptsAtExactOptimum) {
  // Soundness at the boundary: for d = OPT (tiny instances, exact solver),
  // the dual must accept — rejection would falsify its contract.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Instance inst = make_instance(Family::kTable, 5, 6, seed + 300);
    const auto exact = solve_exact(inst);
    ASSERT_TRUE(exact.has_value());
    const DualOutcome out = compressible_dual(inst, exact->makespan, 0.25);
    EXPECT_TRUE(out.accepted) << "seed=" << seed << " opt=" << exact->makespan;
  }
}

}  // namespace
}  // namespace moldable::core
