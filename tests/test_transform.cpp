// Tests for the Lemma 7 transformation rules (Section 4.1.1, Figure 3),
// both the exact-heap policy and the Section 4.3.3 bucketed policy.
#include <gtest/gtest.h>

#include <memory>

#include "src/jobs/generators.hpp"
#include "src/sched/transform.hpp"
#include "src/sched/validator.hpp"

namespace moldable::sched {
namespace {

using jobs::Instance;
using jobs::Job;
using jobs::TableTime;

Instance table_instance(std::vector<std::vector<double>> tables, procs_t m) {
  std::vector<Job> jv;
  for (auto& t : tables) jv.emplace_back(std::make_shared<TableTime>(std::move(t)), m);
  return Instance(std::move(jv), m);
}

// Convenience: run the transformation on a hand-built two-shelf schedule.
ThreeShelfSchedule run(const Instance& inst, const std::vector<std::size_t>& s1,
                       const std::vector<std::size_t>& s2, double d,
                       TransformPolicy policy = TransformPolicy::kExactHeap,
                       double delta = 0.2) {
  std::vector<std::size_t> big;
  std::vector<char> in_s1;
  for (std::size_t j : s1) {
    big.push_back(j);
    in_s1.push_back(1);
  }
  for (std::size_t j : s2) {
    big.push_back(j);
    in_s1.push_back(0);
  }
  const TwoShelfSchedule two = build_two_shelf(inst, big, in_s1, d);
  return apply_transformation_rules(inst, two, policy, delta);
}

procs_t group_total(const ThreeShelfSchedule& t) {
  procs_t total = 0;
  for (const auto& g : t.groups) total += g.count;
  return total;
}

TEST(Transform, RuleOneMovesShortWideJobToS0) {
  // d = 8. Job: t = [10, 5, 5, 5]: gamma(8) = 2, t(2) = 5 <= 6 = (3/4)d,
  // procs > 1 -> rule (i): S0 with 1 processor, duration t(1) = 10 <= 12.
  const Instance inst = table_instance({{10, 5, 5, 5}}, 4);
  const auto t = run(inst, {0}, {}, 8.0);
  EXPECT_EQ(t.p0, 1);
  EXPECT_EQ(t.p1, 0);
  ASSERT_EQ(t.big_jobs.size(), 1u);
  const auto& a = t.big_jobs.assignments()[0];
  EXPECT_EQ(a.procs, 1);
  EXPECT_DOUBLE_EQ(a.duration, 10.0);
  EXPECT_DOUBLE_EQ(a.start, 0.0);
  EXPECT_EQ(group_total(t), 4);
}

TEST(Transform, RuleTwoPairsSequentialJobs) {
  // d = 8. Two jobs with t1 = 5 <= 6, gamma(8) = 1: stacked on one S0 proc.
  const Instance inst = table_instance({{5, 5}, {5.5, 5.5}}, 2);
  const auto t = run(inst, {0, 1}, {}, 8.0);
  EXPECT_EQ(t.p0, 1);
  EXPECT_EQ(t.p1, 0);
  ASSERT_EQ(t.big_jobs.size(), 2u);
  // One starts at 0, the other right after.
  double starts[2] = {t.big_jobs.assignments()[0].start, t.big_jobs.assignments()[1].start};
  std::sort(std::begin(starts), std::end(starts));
  EXPECT_DOUBLE_EQ(starts[0], 0.0);
  EXPECT_GT(starts[1], 0.0);
  EXPECT_TRUE(validate(t.big_jobs, inst).ok);
  EXPECT_EQ(group_total(t), 2);
}

TEST(Transform, SpecialCaseStacksOnHost) {
  // d = 8. X: t1 = 4.5 (cat 2, unpaired); H: t1 = 7 > 6 (cat 3).
  // 4.5 + 7 = 11.5 <= 12 = (3/2)d: X runs on H's processor after H.
  const Instance inst = table_instance({{4.5, 4.5}, {7, 7}}, 2);
  const auto t = run(inst, {0, 1}, {}, 8.0);
  EXPECT_EQ(t.p0, 1);
  EXPECT_EQ(t.p1, 0);
  const auto& as = t.big_jobs.assignments();
  ASSERT_EQ(as.size(), 2u);
  // X (job 0) starts exactly when H finishes.
  for (const auto& a : as)
    if (a.job == 0) {
      EXPECT_DOUBLE_EQ(a.start, 7.0);
      EXPECT_DOUBLE_EQ(a.start + a.duration, 11.5);
    }
  EXPECT_TRUE(validate(t.big_jobs, inst).ok);
  EXPECT_EQ(group_total(t), 2);
  EXPECT_DOUBLE_EQ(t.slack, 0.0);
}

TEST(Transform, UnpairedJobStaysInS1WhenNoHostFits) {
  // d = 8. X: t1 = 5.5; H: t1 = 7: 5.5 + 7 = 12.5 > 12: no stacking.
  const Instance inst = table_instance({{5.5, 5.5}, {7, 7}}, 2);
  const auto t = run(inst, {0, 1}, {}, 8.0);
  EXPECT_EQ(t.p0, 0);
  EXPECT_EQ(t.p1, 2);
  for (const auto& a : t.big_jobs.assignments()) EXPECT_DOUBLE_EQ(a.start, 0.0);
  EXPECT_TRUE(validate(t.big_jobs, inst).ok);
}

TEST(Transform, RuleThreeMovesS2JobIntoFreeProcessors) {
  // d = 8, m = 4. S1: one cat-3 job on 1 proc (t = 7). S2: job 1 with
  // t = [8, 4, 4, 4]: gamma(d/2) = 2. Rule (iii): q = 3, gamma(12) = 1
  // (t1 = 8 <= 12) and t(1) = 8 <= d, so the job moves into S1 where it
  // lands in category 3 (8 > 6). Shelf 2 empties.
  const Instance inst = table_instance({{7, 7, 7, 7}, {8, 4, 4, 4}}, 4);
  const auto t = run(inst, {0}, {1}, 8.0);
  EXPECT_EQ(t.p2, 0);
  EXPECT_EQ(t.p1, 2);  // both jobs sit in S1 on one processor each
  const auto v = validate(t.big_jobs, inst);
  EXPECT_TRUE(v.ok) << (v.errors.empty() ? "" : v.errors.front());
  EXPECT_LE(t.big_jobs.makespan(), 12.0 * (1 + 1e-9));
}

TEST(Transform, S2JobStaysWhenTooWide) {
  // d = 8, m = 2. S1 occupies both processors with cat-3 jobs; the S2 job
  // cannot move (q = 0) and anchors at the horizon.
  const Instance inst = table_instance({{7, 7}, {6.5, 6.5}, {8, 4}}, 2);
  const auto t = run(inst, {0, 1}, {2}, 8.0);
  EXPECT_EQ(t.p2, 2);  // processors, not jobs: the S2 job is 2 wide
  for (const auto& a : t.big_jobs.assignments())
    if (a.job == 2) {
      EXPECT_NEAR(a.start + a.duration, 12.0, 1e-9);  // ends at horizon
    }
  // Processor sharing: S1 job ends by 8 <= start of S2 job (12 - 4 = 8).
  EXPECT_TRUE(validate(t.big_jobs, inst).ok);
}

TEST(Transform, BucketedPolicyBoundsSlack) {
  // Bucketed keys underestimate the host time, so a special-case stack may
  // exceed (3/2)d by at most ~delta*d.
  const double delta = 0.3;
  // Host exact time 7.9 rounds down to ~7.71 on the geom(4, 8, 1+4rho)
  // grid, so the bucketed test 7.71 + 4.2 <= 12 passes while the exact sum
  // 12.1 exceeds the horizon: the stack overshoots by slack <= delta * d.
  const Instance inst = table_instance({{4.2, 4.2}, {7.9, 7.9}}, 2);
  const auto t = run(inst, {0, 1}, {}, 8.0, TransformPolicy::kBucketed, delta);
  EXPECT_TRUE(validate(t.big_jobs, inst).ok);
  EXPECT_EQ(t.p0, 1);  // the stack happened
  EXPECT_GT(t.slack, 0.0);
  EXPECT_LE(t.slack, delta * 8.0 + 1e-9);
  EXPECT_LE(t.big_jobs.makespan(), 12.0 + delta * 8.0 + 1e-9);
}

TEST(Transform, GroupsCoverAllMachinesAcrossRandomInstances) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Instance inst = jobs::make_instance(jobs::Family::kMixed, 20, 16, seed);
    const double d = 2.2 * inst.trivial_lower_bound();
    std::vector<std::size_t> s1, s2;
    for (std::size_t j = 0; j < inst.size(); ++j) {
      const jobs::Job& job = inst.job(j);
      if (job.t1() <= d / 2) continue;
      if (!job.gamma(d / 2)) {
        s1.push_back(j);  // forced
      } else if (j % 2 == 0) {
        s1.push_back(j);
      } else {
        s2.push_back(j);
      }
    }
    // Keep S1 within m processors (drop overflow into S2) so the premise
    // of the transformation holds.
    procs_t used = 0;
    std::vector<std::size_t> s1_ok;
    for (std::size_t j : s1) {
      const procs_t g = *inst.job(j).gamma(d);
      if (used + g <= 16) {
        used += g;
        s1_ok.push_back(j);
      } else if (inst.job(j).gamma(d / 2)) {
        s2.push_back(j);
      }
    }
    ThreeShelfSchedule t;
    try {
      t = run(inst, s1_ok, s2, d);
    } catch (const internal_error&) {
      continue;  // arbitrary selections may violate Lemma 8's premise
    }
    EXPECT_EQ(group_total(t), 16) << "seed=" << seed;
    // The big-jobs schedule alone leaves the small jobs unscheduled, so
    // check capacity and per-assignment durations directly instead of the
    // full validator.
    EXPECT_LE(t.big_jobs.peak_procs(), 16) << "seed=" << seed;
    for (const auto& a : t.big_jobs.assignments()) {
      EXPECT_NEAR(a.duration, inst.job(a.job).time(a.procs),
                  1e-9 * std::max(1.0, a.duration));
      EXPECT_GE(a.start, -1e-9);
    }
    EXPECT_LE(t.big_jobs.makespan(), 1.5 * d * (1 + 1e-9) + t.slack) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace moldable::sched
