// Tests for Job: gamma (canonical allotment) correctness against brute
// force, caching, and the companion search used by the estimator.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "src/jobs/generators.hpp"
#include "src/jobs/job.hpp"
#include "src/util/prng.hpp"

namespace moldable::jobs {
namespace {

Job amdahl_job(double t1, double f, procs_t m) {
  return Job(std::make_shared<AmdahlTime>(t1, f), m);
}

TEST(Job, CachesEndpoints) {
  const Job j = amdahl_job(100.0, 0.8, 64);
  EXPECT_DOUBLE_EQ(j.t1(), 100.0);
  EXPECT_DOUBLE_EQ(j.tmin(), j.time(64));
  EXPECT_EQ(j.machines(), 64);
}

TEST(Job, ValidatesConstructionAndRange) {
  EXPECT_THROW(Job(nullptr, 4), std::invalid_argument);
  EXPECT_THROW(Job(std::make_shared<AmdahlTime>(1.0, 0.5), 0), std::invalid_argument);
  const Job j = amdahl_job(10.0, 0.5, 8);
  EXPECT_THROW(j.time(0), std::invalid_argument);
  EXPECT_THROW(j.time(9), std::invalid_argument);
}

TEST(Job, WorkIsMonotoneForAmdahl) {
  const Job j = amdahl_job(10.0, 0.9, 128);
  for (procs_t k = 1; k < 128; ++k) EXPECT_LE(j.work(k), j.work(k + 1) + 1e-9);
}

// Brute-force gamma for validation.
std::optional<procs_t> gamma_brute(const Job& j, double t) {
  for (procs_t k = 1; k <= j.machines(); ++k)
    if (leq_tol(j.time(k), t)) return k;
  return std::nullopt;
}

TEST(Job, GammaMatchesBruteForceOnTables) {
  util::Prng rng(99);
  for (int rep = 0; rep < 30; ++rep) {
    const procs_t m = rng.uniform_int(1, 80);
    const auto table = random_monotone_table(m, rng.log_uniform(1, 100), rng.next_u64());
    const Job j(std::make_shared<TableTime>(table), m);
    for (int q = 0; q < 40; ++q) {
      // Thresholds spanning below-tmin to above-t1.
      const double t = rng.uniform_real(0.5 * j.tmin(), 1.2 * j.t1());
      EXPECT_EQ(j.gamma(t), gamma_brute(j, t)) << "m=" << m << " t=" << t;
    }
    // Exact hits on table values must return that index (first achieving).
    for (procs_t k = 1; k <= m; ++k) {
      const auto g = j.gamma(j.time(k));
      ASSERT_TRUE(g.has_value());
      EXPECT_LE(*g, k);
      EXPECT_TRUE(leq_tol(j.time(*g), j.time(k)));
    }
  }
}

TEST(Job, GammaUndefinedBelowFastestTime) {
  const Job j = amdahl_job(100.0, 0.5, 16);
  EXPECT_FALSE(j.gamma(j.tmin() * 0.5).has_value());
  EXPECT_EQ(j.gamma(j.tmin()), 16);  // exactly achievable only on all m
}

TEST(Job, GammaOneWhenSequentialSuffices) {
  const Job j = amdahl_job(10.0, 0.9, 1024);
  EXPECT_EQ(j.gamma(10.0), 1);
  EXPECT_EQ(j.gamma(1e9), 1);
}

TEST(Job, GammaHugeMachineCount) {
  // Closed-form oracle with m = 2^40: gamma must stay O(log m) probes and
  // return sensible values (this would OOM with any Theta(m) approach).
  const Job j = amdahl_job(1000.0, 0.999, procs_t{1} << 40);
  const auto g = j.gamma(2.0);
  ASSERT_TRUE(g.has_value());
  EXPECT_TRUE(leq_tol(j.time(*g), 2.0));
  if (*g > 1) {
    EXPECT_GT(j.time(*g - 1), 2.0);
  }
}

TEST(Job, LastAtLeastMatchesBruteForce) {
  util::Prng rng(123);
  for (int rep = 0; rep < 20; ++rep) {
    const procs_t m = rng.uniform_int(1, 60);
    const auto table = random_monotone_table(m, rng.log_uniform(1, 50), rng.next_u64());
    const Job j(std::make_shared<TableTime>(table), m);
    for (int q = 0; q < 30; ++q) {
      const double t = rng.uniform_real(0.5 * j.tmin(), 1.5 * j.t1());
      procs_t expect = 0;
      for (procs_t k = 1; k <= m; ++k)
        if (j.time(k) >= t) expect = k;
      EXPECT_EQ(j.last_at_least(t), expect);
    }
  }
}

TEST(Job, GammaAndLastAtLeastConsistency) {
  const Job j = amdahl_job(64.0, 0.75, 256);
  for (double t : {1.0, 17.0, 20.0, 40.0, 64.0, 100.0}) {
    const auto g = j.gamma(t);
    const procs_t l = j.last_at_least(t);
    if (g && *g > 1) {
      // Everything below gamma is strictly slower than t.
      EXPECT_GT(j.time(*g - 1), t * (1 - 1e-9));
    }
    if (l >= 1 && l < j.machines()) {
      EXPECT_LT(j.time(l + 1), t * (1 + 1e-9));
    }
  }
}

}  // namespace
}  // namespace moldable::jobs
