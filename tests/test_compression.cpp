// Tests for the compression lemmas (Lemma 4 / Lemma 16) across oracle
// families and compression factors.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/core/compression.hpp"
#include "src/jobs/generators.hpp"

namespace moldable::core {
namespace {

using jobs::Family;
using jobs::Instance;
using jobs::make_instance;

struct CompressionCase {
  Family family;
  double rho;
};

class CompressionSweep : public ::testing::TestWithParam<CompressionCase> {};

TEST_P(CompressionSweep, Lemma4BoundHolds) {
  const auto [family, rho] = GetParam();
  const procs_t m = family == Family::kTable ? 2048 : 1 << 16;
  const Instance inst = make_instance(family, 10, m, 99);
  const auto bmin = static_cast<procs_t>(std::ceil(1.0 / rho));
  for (const jobs::Job& job : inst.jobs()) {
    for (procs_t b = bmin; b <= m; b = b * 2 + 1) {
      const CompressionResult r = compress(job, b, rho);
      // Freed processors: at least ceil(b * rho).
      EXPECT_LE(r.new_procs,
                b - static_cast<procs_t>(std::ceil(static_cast<double>(b) * rho)));
      EXPECT_GE(r.new_procs, 1);
      // Lemma 4: time inflation at most 1 + 4 rho (checked inside compress
      // too; re-assert here for the bench-visible quantity).
      EXPECT_LE(r.inflation, 1 + 4 * rho + 1e-9);
      EXPECT_GE(r.inflation, 1 - 1e-9);  // times are non-increasing in procs
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndFactors, CompressionSweep,
    ::testing::Values(CompressionCase{Family::kAmdahl, 0.25},
                      CompressionCase{Family::kAmdahl, 0.05},
                      CompressionCase{Family::kPowerLaw, 0.25},
                      CompressionCase{Family::kPowerLaw, 0.1},
                      CompressionCase{Family::kCommOverhead, 0.2},
                      CompressionCase{Family::kTable, 0.125},
                      CompressionCase{Family::kMixed, 0.0625}),
    [](const auto& info) {
      return jobs::family_name(info.param.family) + "_rho" +
             std::to_string(static_cast<int>(info.param.rho * 1000));
    });

TEST(Compression, ValidatesArguments) {
  const Instance inst = make_instance(Family::kAmdahl, 1, 1024, 1);
  const jobs::Job& job = inst.job(0);
  EXPECT_THROW(compress(job, 100, 0.3), std::invalid_argument);   // rho > 1/4
  EXPECT_THROW(compress(job, 100, 0.0), std::invalid_argument);   // rho <= 0
  EXPECT_THROW(compress(job, 3, 0.25), std::invalid_argument);    // b < 1/rho
  EXPECT_THROW(compress(job, 2048, 0.25), std::invalid_argument); // b > m
}

TEST(Compression, ExactBoundaryCase) {
  // b = 1/rho exactly: frees exactly one processor.
  const Instance inst = make_instance(Family::kPowerLaw, 1, 64, 2);
  const CompressionResult r = compress(inst.job(0), 8, 0.125);
  EXPECT_EQ(r.new_procs, 7);
}

TEST(Lemma16, ParameterIdentities) {
  for (double delta : {0.01, 0.1, 0.5, 1.0}) {
    const auto p = Lemma16Params::from_delta(delta);
    // (1 + 4 rho)^2 = 1 + delta.
    EXPECT_NEAR((1 + 4 * p.rho) * (1 + 4 * p.rho), 1 + delta, 1e-12);
    // factor = 2 rho - rho^2 and b = 1/factor.
    EXPECT_NEAR(p.factor, 2 * p.rho - p.rho * p.rho, 1e-15);
    EXPECT_NEAR(p.b * p.factor, 1.0, 1e-12);
    // Lemma 16's asymptotics: rho = Theta(delta), b = Theta(1/delta).
    EXPECT_GE(p.rho, delta / 12);
    EXPECT_LE(p.rho, delta / 4);
  }
  EXPECT_THROW(Lemma16Params::from_delta(0.0), std::invalid_argument);
  EXPECT_THROW(Lemma16Params::from_delta(1.5), std::invalid_argument);
}

TEST(Lemma16, DoubleCompressionWithinDelta) {
  // Compressing with factor 2 rho - rho^2 inflates time by < 1 + delta.
  const double delta = 0.4;
  const auto p = Lemma16Params::from_delta(delta);
  const Instance inst = make_instance(Family::kMixed, 8, 1 << 14, 5);
  for (const jobs::Job& job : inst.jobs()) {
    const auto b = static_cast<procs_t>(std::ceil(p.b)) * 4;
    const CompressionResult r = compress(job, b, p.factor);
    EXPECT_LT(r.inflation, 1 + delta + 1e-9);
    // Processor shrink factor is at least (1 - rho)^2 - rounding slack.
    EXPECT_LE(static_cast<double>(r.new_procs),
              (1 - p.rho) * (1 - p.rho) * static_cast<double>(b) + 1);
  }
}

}  // namespace
}  // namespace moldable::core
